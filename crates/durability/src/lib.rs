//! # eavm-durability
//!
//! Crash durability for the allocation service: an append-only
//! write-ahead log of admission events, periodic checkpoint snapshots,
//! and the recovery scan that stitches them back into live state.
//!
//! Design in one paragraph: the coordinator journals every admission
//! event (submit, admit, queue, requeue, shed, clock advance) as a
//! CRC32-checksummed length-prefixed frame *before* acking it, and
//! every `checkpoint_every` appends it snapshots its full placement
//! state (per-shard resident VMs with bit-exact finish times, parked
//! queue, counters) to an atomically renamed snapshot file. Recovery
//! loads the newest snapshot whose coverage is consistent with the
//! surviving WAL, replays the WAL tail, truncates any torn trailing
//! frames, and hands the service enough state to resume with verdicts
//! byte-identical to the run that never crashed.
//!
//! The crate knows nothing about the service: records carry primitive
//! fields only, and the service layer owns the mapping to its own
//! `VmRequest`/`Placement`/`Verdict` types. That keeps this crate at
//! the bottom of the dependency DAG (only `eavm-types` and the
//! `eavm-storage` file-operation abstraction below it) and its formats
//! trivially testable. Every file access routes through an
//! [`eavm_storage::Storage`] backend, so the fault injector can drive
//! torn writes, bit rot, ENOSPC, and dropped syncs through the exact
//! production code paths; [`scrub`] is the offline repair pass that
//! truncates damaged tails and quarantines corrupt snapshots.

#![forbid(unsafe_code)]

pub mod codec;
pub mod crc32;
pub mod record;
pub mod recovery;
pub mod scrub;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use record::{
    shed_reason_name, MoveRec, PlacementRec, ReqRec, ServerSnapRec, ShardSnapRec, SnapshotRec,
    WalRecord,
};
pub use recovery::{recover_dir, recover_dir_with, wal_path, RecoveredState, WAL_FILE};
pub use scrub::{scrub_dir, scrub_dir_with, ScrubReport};
pub use snapshot::{
    list_snapshots, list_snapshots_with, prune_snapshots, prune_snapshots_with, read_snapshot,
    read_snapshot_with, snapshot_name, sweep_tmp_files, sweep_tmp_files_with, write_snapshot,
    write_snapshot_with, QUARANTINE_SUFFIX, SNAPSHOT_MAGIC,
};
pub use wal::{read_frames, read_frames_with, Wal, FRAME_HEADER, MAX_FRAME_LEN, WAL_MAGIC};
