//! # eavm-durability
//!
//! Crash durability for the allocation service: an append-only
//! write-ahead log of admission events, periodic checkpoint snapshots,
//! and the recovery scan that stitches them back into live state.
//!
//! Design in one paragraph: the coordinator journals every admission
//! event (submit, admit, queue, requeue, shed, clock advance) as a
//! CRC32-checksummed length-prefixed frame *before* acking it, and
//! every `checkpoint_every` appends it snapshots its full placement
//! state (per-shard resident VMs with bit-exact finish times, parked
//! queue, counters) to an atomically renamed snapshot file. Recovery
//! loads the newest snapshot whose coverage is consistent with the
//! surviving WAL, replays the WAL tail, truncates any torn trailing
//! frames, and hands the service enough state to resume with verdicts
//! byte-identical to the run that never crashed.
//!
//! The crate knows nothing about the service: records carry primitive
//! fields only, and the service layer owns the mapping to its own
//! `VmRequest`/`Placement`/`Verdict` types. That keeps this crate at
//! the bottom of the dependency DAG (only `eavm-types` below it) and
//! its formats trivially testable.

#![forbid(unsafe_code)]

pub mod codec;
pub mod crc32;
pub mod record;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use record::{
    shed_reason_name, MoveRec, PlacementRec, ReqRec, ServerSnapRec, ShardSnapRec, SnapshotRec,
    WalRecord,
};
pub use recovery::{recover_dir, wal_path, RecoveredState, WAL_FILE};
pub use snapshot::{
    list_snapshots, prune_snapshots, read_snapshot, snapshot_name, write_snapshot, SNAPSHOT_MAGIC,
};
pub use wal::{read_frames, Wal, FRAME_HEADER, MAX_FRAME_LEN, WAL_MAGIC};
