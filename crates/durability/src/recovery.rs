//! Journal-directory recovery: pick the newest usable snapshot, decode
//! the WAL, and report exactly what was salvaged.
//!
//! The subtle invariant is snapshot *selection*: a checkpoint records
//! how many WAL frames it covers, and after a torn-tail truncation the
//! newest snapshot may cover more frames than the log still holds — a
//! snapshot "from the future" relative to the surviving WAL. Replaying
//! from it would skip frames that were never applied, so recovery walks
//! snapshots newest-first and takes the first one that both validates
//! (magic + CRC + decode) and satisfies `wal_frames <= frames on disk`,
//! falling back to a full-WAL replay from genesis when none qualifies.

use std::path::{Path, PathBuf};

use eavm_storage::{OsStorage, Storage};
use eavm_types::EavmError;

use crate::record::{SnapshotRec, WalRecord};
use crate::snapshot::{list_snapshots_with, read_snapshot_with, sweep_tmp_files_with};
use crate::wal::read_frames_with;

/// File name of the WAL inside a journal directory.
pub const WAL_FILE: &str = "wal.log";

/// The WAL path for a journal directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Everything salvaged from a journal directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// The snapshot recovery starts from, if any usable one existed.
    pub snapshot: Option<SnapshotRec>,
    /// Every decodable WAL record, from frame zero.
    pub records: Vec<WalRecord>,
    /// Index into `records` where post-snapshot replay begins (0 when
    /// there is no snapshot).
    pub tail_start: usize,
    /// Valid frames on disk (equals `records.len()`).
    pub frames: u64,
    /// Torn/corrupt trailing frames dropped (WAL tail plus any record
    /// that framed correctly but failed to decode).
    pub torn_frames_dropped: u64,
    /// 1 when a snapshot was loaded, else 0.
    pub snapshots_loaded: u64,
    /// Snapshot files that existed but were skipped (corrupt, or
    /// covering more frames than the surviving WAL).
    pub snapshots_skipped: u64,
    /// Leftover checkpoint `*.tmp` files swept away before recovery.
    pub tmp_swept: u64,
}

impl RecoveredState {
    /// Records recovery will replay on top of the snapshot.
    pub fn tail(&self) -> &[WalRecord] {
        &self.records[self.tail_start..]
    }

    /// The verdict-log lines reconstructed from the full WAL, in
    /// append (emission) order.
    pub fn verdict_lines(&self) -> Vec<(u64, String)> {
        self.records
            .iter()
            .filter_map(|r| Some((r.ticket()?, r.verdict_line()?)))
            .collect()
    }
}

/// Recover whatever the journal directory holds. A directory with no
/// WAL and no snapshots recovers to the empty state — starting a brand
/// new service under a journal directory and recovering from it are the
/// same operation.
pub fn recover_dir(dir: &Path) -> Result<RecoveredState, EavmError> {
    recover_dir_with(&OsStorage::new(), dir)
}

/// [`recover_dir`] through an explicit [`Storage`] backend.
pub fn recover_dir_with(storage: &dyn Storage, dir: &Path) -> Result<RecoveredState, EavmError> {
    // A crash between a checkpoint's temp write and its rename strands
    // a `*.tmp` file forever; recovery is the natural sweep point.
    let tmp_swept = sweep_tmp_files_with(storage, dir)?;
    let (payloads, mut torn) = read_frames_with(storage, &wal_path(dir))?;
    let mut records = Vec::with_capacity(payloads.len());
    for payload in &payloads {
        match WalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                // A frame whose CRC validated but whose body does not
                // decode is corruption all the same: stop here, drop it
                // and everything after it.
                torn += 1;
                break;
            }
        }
    }
    let frames = records.len() as u64;

    let mut snapshot = None;
    let mut skipped = 0u64;
    for (_, path) in list_snapshots_with(storage, dir)? {
        match read_snapshot_with(storage, &path).and_then(|payload| SnapshotRec::decode(&payload)) {
            Ok(snap) if snap.wal_frames <= frames => {
                snapshot = Some(snap);
                break;
            }
            _ => skipped += 1,
        }
    }
    let tail_start = snapshot
        .as_ref()
        .map(|s| s.wal_frames as usize)
        .unwrap_or(0);
    Ok(RecoveredState {
        snapshots_loaded: u64::from(snapshot.is_some()),
        snapshot,
        tail_start,
        frames,
        torn_frames_dropped: torn,
        snapshots_skipped: skipped,
        tmp_swept,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReqRec;
    use crate::snapshot::write_snapshot;
    use crate::wal::Wal;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eavm-rec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn submit(ticket: u64) -> WalRecord {
        WalRecord::Submit {
            ticket,
            req: ReqRec {
                id: ticket as u32,
                submit: 0.0,
                workload: 0,
                vm_count: 1,
                deadline: 100.0,
                priority: 1,
            },
        }
    }

    fn empty_snapshot(seq: u64, wal_frames: u64) -> SnapshotRec {
        SnapshotRec {
            seq,
            wal_frames,
            now: 0.0,
            next_ticket: wal_frames,
            cache_generation: seq,
            shards: vec![],
            parked: vec![],
            counters: vec![],
        }
    }

    #[test]
    fn empty_directory_recovers_to_genesis() {
        let dir = tmp("genesis");
        let state = recover_dir(&dir).unwrap();
        assert!(state.snapshot.is_none());
        assert!(state.records.is_empty());
        assert_eq!(state.torn_frames_dropped, 0);
        assert_eq!(state.snapshots_loaded, 0);
    }

    #[test]
    fn snapshot_plus_tail_split() {
        let dir = tmp("tail");
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        for t in 0..6 {
            wal.append(&submit(t).encode()).unwrap();
        }
        write_snapshot(&dir, 1, &empty_snapshot(1, 4).encode()).unwrap();

        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.frames, 6);
        assert_eq!(state.snapshots_loaded, 1);
        assert_eq!(state.tail_start, 4);
        assert_eq!(state.tail().len(), 2);
        assert_eq!(state.tail()[0].ticket(), Some(4));
    }

    #[test]
    fn future_snapshot_is_skipped_after_wal_truncation() {
        let dir = tmp("future");
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        for t in 0..3 {
            wal.append(&submit(t).encode()).unwrap();
        }
        // Checkpoint claims to cover 10 frames — more than the 3 that
        // survived. It must be skipped in favour of the older one.
        write_snapshot(&dir, 2, &empty_snapshot(2, 10).encode()).unwrap();
        write_snapshot(&dir, 1, &empty_snapshot(1, 2).encode()).unwrap();

        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshots_skipped, 1);
        assert_eq!(state.snapshot.as_ref().unwrap().seq, 1);
        assert_eq!(state.tail_start, 2);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older() {
        let dir = tmp("corrupt-snap");
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        wal.append(&submit(0).encode()).unwrap();
        write_snapshot(&dir, 1, &empty_snapshot(1, 1).encode()).unwrap();
        let bad = write_snapshot(&dir, 2, &empty_snapshot(2, 1).encode()).unwrap();
        let mut raw = std::fs::read(&bad).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&bad, &raw).unwrap();

        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshots_skipped, 1);
        assert_eq!(state.snapshot.as_ref().unwrap().seq, 1);
    }

    #[test]
    fn leftover_checkpoint_tmp_files_are_swept() {
        let dir = tmp("tmp-sweep");
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        wal.append(&submit(0).encode()).unwrap();
        write_snapshot(&dir, 1, &empty_snapshot(1, 1).encode()).unwrap();
        // Debris from two crashed checkpoints.
        std::fs::write(dir.join("snap-0000000000000002.snap.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("snap-0000000000000003.snap.tmp"), b"").unwrap();

        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.tmp_swept, 2);
        assert_eq!(state.snapshots_loaded, 1);
        let leftover: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftover.is_empty(), "tmp files survived: {leftover:?}");
    }

    #[test]
    fn undecodable_record_counts_as_torn() {
        let dir = tmp("badrec");
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        wal.append(&submit(0).encode()).unwrap();
        wal.append(&[250, 1, 2, 3]).unwrap(); // valid frame, bogus record
        wal.append(&submit(2).encode()).unwrap();

        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.frames, 1);
        assert_eq!(state.torn_frames_dropped, 1);
        assert_eq!(state.records.len(), 1);
    }
}
