//! `JournalScrub`: offline integrity repair for a journal directory.
//!
//! Recovery (`recover_dir`) is deliberately read-only beyond the tmp
//! sweep: it *skips* damage. The scrubber is the tool that makes the
//! damage go away, so the next recovery starts from a journal that is
//! clean by construction. One pass does four things, in order:
//!
//! 1. **Sweep** leftover checkpoint `*.tmp` files (crash debris).
//! 2. **Repair the WAL tail**: walk frames from the magic, verifying
//!    the length prefix, the CRC, *and* that the record body decodes —
//!    the file is truncated back to the last fully-valid record
//!    boundary, turning a torn or bit-rotted tail into a clean EOF.
//! 3. **Quarantine corrupt snapshots**: every `snap-*.snap` that fails
//!    magic/CRC/decode validation is renamed to `*.snap.quarantine`
//!    (kept for post-mortem, invisible to recovery), so selection falls
//!    back to the next-newest valid one.
//! 4. **Select**: report which snapshot recovery would now start from,
//!    counting "future" snapshots (coverage beyond the surviving WAL)
//!    as skipped-but-healthy — they are not corruption and are left in
//!    place.
//!
//! The whole pass is deterministic: given the same directory bytes it
//! performs the same repairs and renders the same report, which is what
//! lets CI corrupt two copies of a journal with the same fault seed and
//! `cmp` the two scrub reports.

use std::path::{Path, PathBuf};

use eavm_storage::{OsStorage, Storage};
use eavm_types::EavmError;

use crate::crc32::crc32;
use crate::record::{SnapshotRec, WalRecord};
use crate::recovery::wal_path;
use crate::snapshot::{
    list_snapshots_with, read_snapshot_with, sweep_tmp_files_with, QUARANTINE_SUFFIX,
};
use crate::wal::{FRAME_HEADER, MAX_FRAME_LEN, WAL_MAGIC};

/// What one scrub pass found and fixed. Rendered with [`render`]
/// (deterministic, file names only — never absolute paths, so reports
/// from two copies of the same journal compare byte-equal).
///
/// [`render`]: ScrubReport::render
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// A `wal.log` was present.
    pub wal_present: bool,
    /// Fully-valid records surviving in the WAL after repair.
    pub wal_records: u64,
    /// Bytes truncated off the WAL tail (0 = no repair needed).
    pub torn_bytes_truncated: u64,
    /// 1 when the tail was repaired, else 0 (kept as a counter so the
    /// service can sum it across scrubs).
    pub torn_tails_repaired: u64,
    /// Leftover checkpoint `*.tmp` files removed.
    pub tmp_swept: u64,
    /// Snapshot files examined.
    pub snapshots_checked: u64,
    /// Snapshot files that validated end-to-end.
    pub snapshots_ok: u64,
    /// File names (not paths) renamed to `.quarantine`, in the order
    /// they were examined (newest sequence first).
    pub quarantined: Vec<String>,
    /// Valid snapshots skipped because they cover more WAL frames than
    /// survive on disk — healthy files, wrong timeline.
    pub snapshots_future: u64,
    /// The snapshot sequence recovery will now start from, if any.
    pub usable_snapshot: Option<u64>,
}

impl ScrubReport {
    /// Number of snapshots moved to quarantine.
    pub fn snapshots_quarantined(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// True when the pass changed nothing: no debris, no repair, no
    /// quarantine.
    pub fn is_clean(&self) -> bool {
        self.torn_tails_repaired == 0 && self.tmp_swept == 0 && self.quarantined.is_empty()
    }

    /// Deterministic multi-line report (stable across machines and
    /// directory locations).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wal: present={} records={} torn_bytes_truncated={} torn_tails_repaired={}\n",
            self.wal_present, self.wal_records, self.torn_bytes_truncated, self.torn_tails_repaired
        ));
        out.push_str(&format!(
            "snapshots: checked={} ok={} quarantined={} future={} usable={}\n",
            self.snapshots_checked,
            self.snapshots_ok,
            self.snapshots_quarantined(),
            self.snapshots_future,
            self.usable_snapshot
                .map(|s| s.to_string())
                .unwrap_or_else(|| "none".into()),
        ));
        for name in &self.quarantined {
            out.push_str(&format!("quarantine: {name}\n"));
        }
        out.push_str(&format!("tmp_swept: {}\n", self.tmp_swept));
        out.push_str(&format!(
            "verdict: {}\n",
            if self.is_clean() { "clean" } else { "repaired" }
        ));
        out
    }
}

/// Walk the raw WAL bytes and return the byte length of the prefix
/// (including the magic) whose frames are valid *and* decode as
/// records, plus how many records that is.
fn valid_record_prefix(raw: &[u8]) -> (u64, u64) {
    let mut pos = WAL_MAGIC.len();
    let mut records = 0u64;
    loop {
        if raw.len() - pos < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN || raw.len() - pos - FRAME_HEADER < len {
            break;
        }
        let payload = &raw[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc || WalRecord::decode(payload).is_err() {
            break;
        }
        records += 1;
        pos += FRAME_HEADER + len;
    }
    (pos as u64, records)
}

/// Scrub a journal directory on the real filesystem.
pub fn scrub_dir(dir: &Path) -> Result<ScrubReport, EavmError> {
    scrub_dir_with(&OsStorage::new(), dir)
}

/// Scrub a journal directory through an explicit [`Storage`] backend.
pub fn scrub_dir_with(storage: &dyn Storage, dir: &Path) -> Result<ScrubReport, EavmError> {
    let mut report = ScrubReport {
        tmp_swept: sweep_tmp_files_with(storage, dir)?,
        ..ScrubReport::default()
    };

    // WAL: truncate back to the last valid, decodable record boundary.
    let path = wal_path(dir);
    if let Some(raw) = storage.try_read(&path)? {
        report.wal_present = true;
        if raw.len() < WAL_MAGIC.len() || raw[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(EavmError::Durability(format!(
                "{} is not a WAL (bad magic); refusing to scrub",
                path.display()
            )));
        }
        let (keep, records) = valid_record_prefix(&raw);
        report.wal_records = records;
        if keep < raw.len() as u64 {
            storage.truncate(&path, keep)?;
            report.torn_bytes_truncated = raw.len() as u64 - keep;
            report.torn_tails_repaired = 1;
        }
    }

    // Snapshots: quarantine anything corrupt; classify the rest.
    for (seq, path) in list_snapshots_with(storage, dir)? {
        report.snapshots_checked += 1;
        let valid =
            read_snapshot_with(storage, &path).and_then(|payload| SnapshotRec::decode(&payload));
        match valid {
            Ok(snap) => {
                report.snapshots_ok += 1;
                if snap.wal_frames <= report.wal_records {
                    if report.usable_snapshot.is_none() {
                        report.usable_snapshot = Some(seq);
                    }
                } else {
                    report.snapshots_future += 1;
                }
            }
            Err(_) => {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let quarantine = PathBuf::from(format!("{}{QUARANTINE_SUFFIX}", path.display()));
                storage.rename(&path, &quarantine)?;
                report.quarantined.push(name);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReqRec;
    use crate::recovery::recover_dir;
    use crate::snapshot::{snapshot_name, write_snapshot};
    use crate::wal::Wal;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eavm-scrub-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn submit(ticket: u64) -> WalRecord {
        WalRecord::Submit {
            ticket,
            req: ReqRec {
                id: ticket as u32,
                submit: 0.0,
                workload: 0,
                vm_count: 1,
                deadline: 100.0,
                priority: 1,
            },
        }
    }

    fn snapshot_rec(seq: u64, wal_frames: u64) -> SnapshotRec {
        SnapshotRec {
            seq,
            wal_frames,
            now: 0.0,
            next_ticket: wal_frames,
            cache_generation: seq,
            shards: vec![],
            parked: vec![],
            counters: vec![],
        }
    }

    fn seeded_dir(name: &str) -> PathBuf {
        let dir = tmp(name);
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        for t in 0..6 {
            wal.append(&submit(t).encode()).unwrap();
        }
        write_snapshot(&dir, 1, &snapshot_rec(1, 2).encode()).unwrap();
        write_snapshot(&dir, 2, &snapshot_rec(2, 4).encode()).unwrap();
        dir
    }

    #[test]
    fn clean_journal_scrubs_clean() {
        let dir = seeded_dir("clean");
        let report = scrub_dir(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.wal_records, 6);
        assert_eq!(report.snapshots_ok, 2);
        assert_eq!(report.usable_snapshot, Some(2));
        assert!(report.render().contains("verdict: clean"));
    }

    #[test]
    fn torn_tail_is_truncated_to_a_record_boundary() {
        let dir = seeded_dir("torn");
        let path = wal_path(&dir);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xAB; 11]);
        std::fs::write(&path, &raw).unwrap();

        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.torn_tails_repaired, 1);
        assert_eq!(report.torn_bytes_truncated, 11);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // Idempotent: a second pass finds nothing to do.
        assert!(scrub_dir(&dir).unwrap().is_clean());
    }

    #[test]
    fn undecodable_record_is_also_truncated() {
        let dir = tmp("badrec");
        let (mut wal, _) = Wal::open(&wal_path(&dir)).unwrap();
        wal.append(&submit(0).encode()).unwrap();
        let keep = wal.bytes();
        wal.append(&[250, 1, 2, 3]).unwrap(); // valid frame, bogus record
        drop(wal);
        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.wal_records, 1);
        assert_eq!(report.torn_tails_repaired, 1);
        assert_eq!(std::fs::metadata(wal_path(&dir)).unwrap().len(), keep);
        assert_eq!(recover_dir(&dir).unwrap().torn_frames_dropped, 0);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_with_fallback() {
        let dir = seeded_dir("quarantine");
        let newest = dir.join(snapshot_name(2));
        let mut raw = std::fs::read(&newest).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        std::fs::write(&newest, &raw).unwrap();

        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.quarantined, vec![format!("{}", snapshot_name(2))]);
        assert_eq!(report.usable_snapshot, Some(1));
        assert!(!newest.exists());
        assert!(PathBuf::from(format!("{}{QUARANTINE_SUFFIX}", newest.display())).exists());
        // Recovery after the scrub starts from the surviving snapshot.
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshot.as_ref().unwrap().seq, 1);
        assert_eq!(state.snapshots_skipped, 0);
    }

    #[test]
    fn future_snapshot_is_skipped_not_quarantined() {
        let dir = seeded_dir("future");
        // Truncate the WAL to fewer frames than snapshot 2 covers.
        let raw = std::fs::read(wal_path(&dir)).unwrap();
        let (keep, _) = {
            // Keep magic + 3 records by re-scanning 3 frames.
            let mut pos = WAL_MAGIC.len();
            for _ in 0..3 {
                let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
                pos += FRAME_HEADER + len;
            }
            (pos, ())
        };
        std::fs::write(wal_path(&dir), &raw[..keep]).unwrap();

        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.wal_records, 3);
        assert_eq!(report.snapshots_future, 1);
        assert_eq!(report.usable_snapshot, Some(1));
        assert!(report.quarantined.is_empty());
        assert!(dir.join(snapshot_name(2)).exists(), "healthy file stays");
    }

    #[test]
    fn report_renders_deterministically() {
        let a = scrub_dir(&seeded_dir("render-a")).unwrap();
        let b = scrub_dir(&seeded_dir("render-b")).unwrap();
        assert_eq!(a.render(), b.render());
        assert!(!a.render().contains('/'), "no paths in the report");
    }
}
