//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over byte
//! slices — the checksum guarding every WAL frame and snapshot payload.
//!
//! Hand-rolled on purpose: the durability crate must stay dependency
//! free (nothing below it but `eavm-types`), and the classic table-driven
//! implementation is ~20 lines. The test vectors pin the exact variant so
//! journals written today stay readable forever.

/// 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"journal frame payload");
        let mut corrupted = b"journal frame payload".to_vec();
        corrupted[4] ^= 0x01;
        assert_ne!(crc32(&corrupted), base);
    }
}
