//! Tiny little-endian wire codec shared by WAL records and snapshots.
//!
//! Everything the journal persists is built from five primitives —
//! `u8`, `u32`, `u64`, `f64` (as IEEE-754 bits, so round-trips are
//! bit-exact), and length-prefixed byte strings. [`Enc`] appends to a
//! growable buffer; [`Dec`] walks a slice and fails with
//! [`EavmError::Durability`] instead of panicking on truncated or
//! malformed input, because decode errors are how torn frames are
//! detected.

use eavm_types::EavmError;

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as raw IEEE-754 bits: encode/decode round-trips are
    /// bit-exact, which the recovery parity proof depends on.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Checked `usize -> u32` length prefix: the codec's one narrowing
    /// conversion, in one place. Record collections are bounded far
    /// below `u32::MAX`; a longer one is a logic bug, surfaced by the
    /// debug assert and saturated in release (producing a record the
    /// decoder rejects as truncated — never a silently wrapped length).
    pub fn put_len(&mut self, n: usize) {
        debug_assert!(u32::try_from(n).is_ok(), "record length {n} exceeds u32");
        self.put_u32(u32::try_from(n).unwrap_or(u32::MAX));
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EavmError> {
        if self.buf.len() - self.pos < n {
            return Err(EavmError::Durability(format!(
                "truncated record: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, EavmError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, EavmError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, EavmError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, EavmError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Checked counterpart of [`Enc::put_len`]: a wire length widened
    /// to `usize` via `try_from`, so even a 16-bit target fails with a
    /// decode error instead of truncating.
    pub fn get_len(&mut self) -> Result<usize, EavmError> {
        let v = self.get_u32()?;
        usize::try_from(v)
            .map_err(|_| EavmError::Durability(format!("record length {v} exceeds usize")))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], EavmError> {
        let len = self.get_len()?;
        self.take(len)
    }

    pub fn get_string(&mut self) -> Result<String, EavmError> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| EavmError::Durability("non-utf8 string in record".into()))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole input was consumed — trailing bytes mean a
    /// version/format mismatch, not a benign extension.
    pub fn expect_end(&self) -> Result<(), EavmError> {
        if self.remaining() != 0 {
            return Err(EavmError::Durability(format!(
                "{} trailing bytes after record",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_f64(-0.0);
        e.put_f64(1234.5678e-9);
        e.put_str("snapshot");
        let buf = e.finish();

        let mut d = Dec::new(&buf);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_f64().unwrap(), 1234.5678e-9);
        assert_eq!(d.get_string().unwrap(), "snapshot");
        d.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.put_u64(42);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..5]);
        assert!(d.get_u64().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut e = Enc::new();
        e.put_u32(1);
        e.put_u8(0);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        d.get_u32().unwrap();
        assert!(d.expect_end().is_err());
    }
}
