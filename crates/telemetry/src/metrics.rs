//! Metric instruments: sharded atomic counters, gauges, log-bucketed
//! histograms, and the registry that names them.
//!
//! Every instrument is a cheap cloneable handle around an `Arc`'d core
//! (or nothing at all for the no-op variant handed out by a disabled
//! [`crate::Telemetry`]). Writers never lock: counters and histograms
//! are relaxed atomics, and a *sharded* counter spreads its hot
//! increments across cache-line-padded stripes so independent worker
//! threads never contend on one cache line — while still exposing both
//! the per-stripe value (one stripe per service shard) and the sum.
//!
//! Reads are snapshots: [`Registry::snapshot`] walks the sorted
//! instrument map, so exports are deterministic in ordering regardless
//! of registration order or thread timing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One counter stripe, padded to a cache line so adjacent stripes never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(AtomicU64);

#[derive(Debug)]
struct CounterCore {
    stripes: Box<[Stripe]>,
}

/// A monotonically increasing counter.
///
/// Handles are cheap clones; a handle built by [`Counter::noop`] drops
/// every write and reads zero (the disabled-telemetry path). Multi-stripe
/// counters ([`Counter::standalone_sharded`]) let each writer thread own
/// a stripe: [`Counter::get`] sums all stripes, [`Counter::on_stripe`]
/// reads one.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// A handle that drops writes and reads zero.
    pub fn noop() -> Counter {
        Counter { core: None }
    }

    /// A single-stripe counter not attached to any registry.
    pub fn standalone() -> Counter {
        Counter::standalone_sharded(1)
    }

    /// A counter with `stripes` independent write lanes (min 1).
    pub fn standalone_sharded(stripes: usize) -> Counter {
        let stripes = stripes.max(1);
        Counter {
            core: Some(Arc::new(CounterCore {
                stripes: (0..stripes).map(|_| Stripe::default()).collect(),
            })),
        }
    }

    /// Whether writes are recorded (false for no-op handles).
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Add 1 to stripe 0.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to stripe 0.
    pub fn add(&self, n: u64) {
        self.add_on(0, n);
    }

    /// Add `n` to a specific stripe (wraps modulo the stripe count).
    pub fn add_on(&self, stripe: usize, n: u64) {
        if let Some(core) = &self.core {
            let i = stripe % core.stripes.len();
            core.stripes[i].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum of all stripes.
    pub fn get(&self) -> u64 {
        match &self.core {
            Some(core) => core
                .stripes
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum(),
            None => 0,
        }
    }

    /// Value of one stripe (wraps modulo the stripe count).
    pub fn on_stripe(&self, stripe: usize) -> u64 {
        match &self.core {
            Some(core) => {
                let i = stripe % core.stripes.len();
                core.stripes[i].0.load(Ordering::Relaxed)
            }
            None => 0,
        }
    }
}

/// A last-value-wins signed gauge (queue depths, resident counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    core: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A handle that drops writes and reads zero.
    pub fn noop() -> Gauge {
        Gauge { core: None }
    }

    /// A gauge not attached to any registry.
    pub fn standalone() -> Gauge {
        Gauge {
            core: Some(Arc::new(AtomicI64::new(0))),
        }
    }

    /// Set the current value.
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.core {
            core.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the current value by `delta`.
    pub fn adjust(&self, delta: i64) {
        if let Some(core) = &self.core {
            core.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        match &self.core {
            Some(core) => core.load(Ordering::Relaxed),
            None => 0,
        }
    }
}

/// Bucket count of the log-bucketed histogram: one bucket per power of
/// two of the recorded `u64` value, plus one for zero.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Index of the bucket covering `v`: bucket 0 holds zero, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i - 1]`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the value a quantile reports).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed histogram of `u64` samples (typically latencies in
/// microseconds): lock-free recording into power-of-two buckets, with
/// p50/p95/p99/max read out of a [`HistogramSnapshot`].
///
/// Quantiles are bucket upper bounds, so they over-report by at most 2×
/// — the right trade for a dependency-free hot-path instrument.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket upper bound, capped at `max`).
    pub p50: u64,
    /// 95th percentile (bucket upper bound, capped at `max`).
    pub p95: u64,
    /// 99th percentile (bucket upper bound, capped at `max`).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// A handle that drops samples and snapshots to zeros.
    pub fn noop() -> Histogram {
        Histogram { core: None }
    }

    /// A histogram not attached to any registry.
    pub fn standalone() -> Histogram {
        Histogram {
            core: Some(Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            })),
        }
    }

    /// Whether samples are recorded (false for no-op handles).
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
            core.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Snapshot counts and quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let Some(core) = &self.core else {
            return HistogramSnapshot::default();
        };
        let counts: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max = core.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named map of instruments with get-or-register semantics and
/// deterministically ordered snapshots.
///
/// Registration takes a short lock; the returned handles write lock-free
/// afterwards. Re-registering a name returns the existing handle (a
/// kind mismatch returns a no-op handle rather than panicking — the
/// registry never takes a process down).
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

/// Deterministic point-in-time view of a whole registry: every vector is
/// sorted by instrument name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, summed value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register a single-stripe counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.sharded_counter(name, 1)
    }

    /// Get or register a counter with `stripes` write lanes. An existing
    /// counter is returned as-is (its stripe count wins).
    pub fn sharded_counter(&self, name: &str, stripes: usize) -> Counter {
        let mut map = self.instruments.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::standalone_sharded(stripes)))
        {
            Instrument::Counter(c) => c.clone(),
            _ => Counter::noop(),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::standalone()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge::noop(),
        }
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.instruments.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::standalone()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram::noop(),
        }
    }

    /// Snapshot every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.instruments.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_stripes_and_reads_each() {
        let c = Counter::standalone_sharded(4);
        c.add_on(0, 5);
        c.add_on(1, 7);
        c.add_on(3, 1);
        c.add_on(7, 1); // wraps onto stripe 3
        assert_eq!(c.get(), 14);
        assert_eq!(c.on_stripe(0), 5);
        assert_eq!(c.on_stripe(1), 7);
        assert_eq!(c.on_stripe(2), 0);
        assert_eq!(c.on_stripe(3), 2);
    }

    #[test]
    fn noop_counter_drops_writes() {
        let c = Counter::noop();
        c.inc();
        c.add_on(3, 99);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
    }

    #[test]
    fn counter_handles_share_one_core() {
        let a = Counter::standalone();
        let b = a.clone();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn striped_counter_is_consistent_under_threads() {
        let c = Counter::standalone_sharded(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.add_on(t, 1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        for t in 0..4 {
            assert_eq!(c.on_stripe(t), 10_000);
        }
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::standalone();
        g.set(10);
        g.adjust(-3);
        assert_eq!(g.get(), 7);
        let noop = Gauge::noop();
        noop.set(5);
        assert_eq!(noop.get(), 0);
    }

    #[test]
    fn histogram_buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let h = Histogram::standalone();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 10_000);
        assert_eq!(s.sum, 90 * 100 + 10 * 10_000);
        // p50 lands in the bucket of 100 ([64, 127] → upper 127).
        assert_eq!(s.p50, 127);
        // p95 and p99 land in the slow bucket, capped at the true max.
        assert_eq!(s.p95, 10_000);
        assert_eq!(s.p99, 10_000);
        assert!((s.mean() - 1090.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_noop_histograms_snapshot_to_zero() {
        assert_eq!(
            Histogram::standalone().snapshot(),
            HistogramSnapshot::default()
        );
        let noop = Histogram::noop();
        noop.record(42);
        assert_eq!(noop.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn registry_is_idempotent_and_sorted() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.gauge").set(-4);
        r.histogram("h.lat").record(3);
        // Re-registering returns the same underlying counter.
        r.counter("a.first").add(3);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 5), ("z.last".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("m.gauge".to_string(), -4)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.counter("a.first"), 5);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn registry_kind_mismatch_yields_noop() {
        let r = Registry::new();
        r.counter("x");
        let g = r.gauge("x");
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = r.histogram("x");
        assert!(!h.is_enabled());
    }
}
