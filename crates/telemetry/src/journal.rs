//! Bounded structured event journal.
//!
//! A fixed-capacity ring buffer of tagged events: when full, the oldest
//! event is dropped and a drop counter bumps, so a misbehaving subsystem
//! can never grow memory without bound. Timestamps are *virtual* seconds
//! supplied by the caller (simulation/service time), never wall clock —
//! journaling must not perturb deterministic replay.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Event severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fine-grained diagnostic detail.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Unexpected but recoverable conditions (shed, conflict).
    Warn,
    /// Failures that lose work.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number across the journal's lifetime (counts
    /// dropped events too, so gaps reveal loss).
    pub seq: u64,
    /// Virtual time in seconds when the event was emitted.
    pub time_s: f64,
    /// Emitting subsystem (`"service"`, `"simulator"`, ...).
    pub subsystem: &'static str,
    /// Severity tag.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value payload.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// Render as a single log line: `[12.5s service WARN] shed vm=3`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "[{:.3}s {} {}] {}",
            self.time_s, self.subsystem, self.severity, self.message
        );
        for (k, v) in &self.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        line
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-capacity, thread-safe event buffer.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Journal {
    /// A journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(
        &self,
        time_s: f64,
        subsystem: &'static str,
        severity: Severity,
        message: impl Into<String>,
        fields: Vec<(&'static str, String)>,
    ) {
        let mut ring = self.ring.lock().expect("journal poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(Event {
            seq,
            time_s,
            subsystem,
            severity,
            message: message.into(),
            fields,
        });
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("journal poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("journal poisoned").dropped
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.ring.lock().expect("journal poisoned").next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_newest_and_counts_drops() {
        let j = Journal::new(2);
        j.push(1.0, "svc", Severity::Info, "a", vec![]);
        j.push(2.0, "svc", Severity::Info, "b", vec![]);
        j.push(3.0, "svc", Severity::Warn, "c", vec![("vm", "3".into())]);
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "b");
        assert_eq!(events[1].message, "c");
        assert_eq!(events[1].seq, 2);
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.total(), 3);
    }

    #[test]
    fn renders_a_log_line() {
        let j = Journal::new(4);
        j.push(
            12.5,
            "service",
            Severity::Warn,
            "shed",
            vec![("vm", "3".into()), ("reason", "full".into())],
        );
        assert_eq!(
            j.events()[0].render(),
            "[12.500s service WARN] shed vm=3 reason=full"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let j = Journal::new(0);
        assert_eq!(j.capacity(), 1);
        j.push(0.0, "x", Severity::Debug, "only", vec![]);
        assert_eq!(j.events().len(), 1);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }
}
