//! # eavm-telemetry
//!
//! Dependency-free observability for the EAVM workspace: a named
//! metrics [`Registry`] (sharded atomic [`Counter`]s, [`Gauge`]s,
//! log-bucketed [`Histogram`]s with p50/p95/p99/max), a bounded
//! structured event [`Journal`], and deterministic exporters
//! (Prometheus text format and JSON, see [`MetricsSnapshot`]).
//!
//! The crate sits at the bottom of the workspace dependency DAG — below
//! even `eavm-types` — so every layer (core search, simulator, service,
//! CLI, benches) can emit into one shared [`Telemetry`] handle instead
//! of growing its own ad-hoc stat structs.
//!
//! ## Enabled vs disabled
//!
//! A [`Telemetry`] is constructed either enabled ([`Telemetry::new`])
//! or disabled ([`Telemetry::disabled`]). A disabled handle hands out
//! no-op instruments — an increment is a branch on a `None` and nothing
//! else — and drops journal events, so instrumented hot paths cost
//! effectively nothing when observability is off. Crucially, neither
//! mode reads the wall clock on any code path that feeds allocation
//! decisions, so deterministic replay stays bit-exact with telemetry
//! enabled (asserted by `tests/service_replay.rs` at the workspace
//! root).

#![forbid(unsafe_code)]

mod export;
mod journal;
mod metrics;

pub use journal::{Event, Journal, Severity};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};

use std::fmt;
use std::sync::Arc;

/// Default bound on retained journal events.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Shared observability handle: one registry plus one journal.
///
/// Cheap to clone via `Arc`; every subsystem that wants to emit metrics
/// holds an `Arc<Telemetry>` and registers its instruments by name.
pub struct Telemetry {
    enabled: bool,
    registry: Registry,
    journal: Journal,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("journal_capacity", &self.journal.capacity())
            .finish()
    }
}

impl Telemetry {
    /// An enabled handle with the default journal capacity.
    pub fn new() -> Arc<Telemetry> {
        Telemetry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` journal events.
    pub fn with_journal_capacity(capacity: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: true,
            registry: Registry::new(),
            journal: Journal::new(capacity),
        })
    }

    /// A disabled handle: instruments are no-ops, events are dropped.
    pub fn disabled() -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: false,
            registry: Registry::new(),
            journal: Journal::new(1),
        })
    }

    /// Whether instruments record and events are retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or register a single-stripe counter (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        if self.enabled {
            self.registry.counter(name)
        } else {
            Counter::noop()
        }
    }

    /// Get or register a counter with `stripes` independent write lanes
    /// (no-op when disabled).
    pub fn sharded_counter(&self, name: &str, stripes: usize) -> Counter {
        if self.enabled {
            self.registry.sharded_counter(name, stripes)
        } else {
            Counter::noop()
        }
    }

    /// Get or register a gauge (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        if self.enabled {
            self.registry.gauge(name)
        } else {
            Gauge::noop()
        }
    }

    /// Get or register a histogram (no-op when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        if self.enabled {
            self.registry.histogram(name)
        } else {
            Histogram::noop()
        }
    }

    /// Append a journal event (dropped when disabled). `time_s` is
    /// virtual time — callers must not pass wall-clock readings on
    /// deterministic paths.
    pub fn event(
        &self,
        time_s: f64,
        subsystem: &'static str,
        severity: Severity,
        message: impl Into<String>,
        fields: Vec<(&'static str, String)>,
    ) {
        if self.enabled {
            self.journal
                .push(time_s, subsystem, severity, message, fields);
        }
    }

    /// Snapshot every registered instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The event journal (empty when disabled).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_handle_records() {
        let t = Telemetry::new();
        t.counter("a").inc();
        t.sharded_counter("b", 2).add_on(1, 4);
        t.gauge("g").set(7);
        t.histogram("h").record(10);
        t.event(1.0, "test", Severity::Info, "hello", vec![]);
        let snap = t.snapshot();
        assert_eq!(snap.counter("a"), 1);
        assert_eq!(snap.counter("b"), 4);
        assert_eq!(snap.gauges, vec![("g".to_string(), 7)]);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(t.journal().events().len(), 1);
    }

    #[test]
    fn disabled_handle_drops_everything() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("a").inc();
        t.sharded_counter("b", 4).add(9);
        t.gauge("g").set(7);
        t.histogram("h").record(10);
        t.event(1.0, "test", Severity::Error, "dropped", vec![]);
        assert!(t.snapshot().is_empty());
        assert!(t.journal().events().is_empty());
    }

    #[test]
    fn instruments_are_shared_by_name() {
        let t = Telemetry::new();
        t.counter("x").inc();
        t.counter("x").inc();
        assert_eq!(t.snapshot().counter("x"), 2);
    }
}
