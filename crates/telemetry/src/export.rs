//! Exporters over a [`MetricsSnapshot`]: Prometheus text format, a JSON
//! document, and a human-readable block for CLI output.
//!
//! All three iterate the snapshot's already-sorted vectors, so output is
//! byte-for-byte deterministic for a given set of instrument values —
//! snapshot tests can assert on it directly.

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Map an instrument name to a legal Prometheus metric name: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit is
/// prefixed with `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Counters and gauges become single samples; each histogram becomes
    /// a summary (`{quantile="..."}` samples plus `_sum`, `_count`, and a
    /// non-standard `_max` gauge).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            let _ = writeln!(out, "{n}_max {}", h.max);
        }
        out
    }

    /// Render the snapshot as a pretty-printed JSON document with three
    /// top-level objects (`counters`, `gauges`, `histograms`), keys in
    /// sorted instrument order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {value}", json_escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {value}", json_escape(name));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push('}');
        out.push('\n');
        out
    }

    /// Render a compact human-readable block for CLI output, one
    /// instrument per line, indented for embedding under a heading.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "  {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name}: count={} p50={} p95={} p99={} max={}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("service.submitted").add(42);
        r.counter("service.shed.admission").add(3);
        r.gauge("service.parked_depth").set(-1);
        let h = r.histogram("service.admission_latency_us");
        for _ in 0..9 {
            h.record(100);
        }
        h.record(5000);
        r
    }

    #[test]
    fn prometheus_export_is_deterministic() {
        let expected = "\
# TYPE service_shed_admission counter
service_shed_admission 3
# TYPE service_submitted counter
service_submitted 42
# TYPE service_parked_depth gauge
service_parked_depth -1
# TYPE service_admission_latency_us summary
service_admission_latency_us{quantile=\"0.5\"} 127
service_admission_latency_us{quantile=\"0.95\"} 5000
service_admission_latency_us{quantile=\"0.99\"} 5000
service_admission_latency_us_sum 5900
service_admission_latency_us_count 10
service_admission_latency_us_max 5000
";
        // Byte-identical across repeated snapshots and registration order.
        assert_eq!(sample_registry().snapshot().to_prometheus(), expected);
        assert_eq!(sample_registry().snapshot().to_prometheus(), expected);
    }

    #[test]
    fn json_export_is_deterministic() {
        let expected = "{
  \"counters\": {
    \"service.shed.admission\": 3,
    \"service.submitted\": 42
  },
  \"gauges\": {
    \"service.parked_depth\": -1
  },
  \"histograms\": {
    \"service.admission_latency_us\": {\"count\": 10, \"sum\": 5900, \"max\": 5000, \"p50\": 127, \"p95\": 5000, \"p99\": 5000}
  }
}
";
        assert_eq!(sample_registry().snapshot().to_json(), expected);
    }

    #[test]
    fn empty_snapshot_exports_are_valid() {
        let r = Registry::new();
        assert_eq!(r.snapshot().to_prometheus(), "");
        assert_eq!(
            r.snapshot().to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
        assert_eq!(r.snapshot().render(), "");
    }

    #[test]
    fn names_are_sanitized_for_prometheus() {
        assert_eq!(super::prometheus_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(super::prometheus_name("9lives"), "_9lives");
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn human_render_lists_every_instrument() {
        let s = sample_registry().snapshot().render();
        assert!(s.contains("  service.submitted = 42"));
        assert!(s.contains("  service.parked_depth = -1"));
        assert!(s.contains("service.admission_latency_us: count=10 p50=127"));
    }
}
