//! Property tests for the lexer + brace-tree parser: mutated and
//! truncated copies of *real workspace sources* must never panic the
//! tokenizer or the tree builder, token spans must stay in-bounds and
//! sliceable, and every tree node's body range must nest inside its
//! parent. The corpus is the code the linter actually runs on — the
//! same files `run_lint` scans in CI — so the properties exercise the
//! exact token shapes (raw strings, lifetimes, nested generics, macro
//! bodies) the scanner meets in production.

use eavm_lint::lexer::{tokenize, Tok, TokKind};
use eavm_lint::parser::{parse, Node};
use proptest::prelude::*;
use std::path::Path;

/// Real sources the corpus mutates: the linter's own scanner (dense
/// with pragmas and comment handling), the hottest replay-critical
/// file, the WAL codec, and the journal layer.
const CORPUS_FILES: [&str; 4] = [
    "crates/lint/src/rules.rs",
    "crates/simulator/src/engine.rs",
    "crates/durability/src/record.rs",
    "crates/service/src/durable.rs",
];

fn corpus() -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    CORPUS_FILES
        .iter()
        .map(|rel| {
            std::fs::read_to_string(root.join(rel))
                .unwrap_or_else(|e| panic!("corpus file {rel}: {e}"))
        })
        .collect()
}

/// Round a byte offset down to the nearest char boundary.
fn floor_char_boundary(s: &str, mut at: usize) -> usize {
    at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// The invariants every token stream must satisfy, whatever the input.
fn check_spans(src: &str, toks: &[Tok]) -> Result<(), TestCaseError> {
    let mut prev_end = 0usize;
    for t in toks {
        prop_assert!(t.start <= t.end, "span inverted: {t:?}");
        prop_assert!(
            t.end <= src.len(),
            "span past end of {}-byte src: {t:?}",
            src.len()
        );
        prop_assert!(t.start >= prev_end, "spans overlap at {t:?}");
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span splits a char: {t:?}"
        );
        // Slicing must not panic, and an ident slices back to itself.
        let slice = &src[t.start..t.end];
        if t.kind == TokKind::Ident {
            prop_assert_eq!(slice, t.text.as_str());
        }
        prev_end = t.end;
    }
    Ok(())
}

/// Every node's body must lie within `bound`, and children must nest
/// inside their parent's body.
fn check_nesting(nodes: &[Node], bound: std::ops::Range<usize>) -> Result<(), TestCaseError> {
    for n in nodes {
        prop_assert!(n.body.start <= n.body.end, "body inverted: {n:?}");
        prop_assert!(
            bound.start <= n.body.start && n.body.end <= bound.end,
            "body {:?} escapes enclosing range {bound:?}",
            n.body
        );
        check_nesting(&n.children, n.body.clone())?;
    }
    Ok(())
}

/// Lex + parse and check every structural invariant. The panic-freedom
/// property is implicit: any panic fails the test.
fn lex_parse_check(src: &str) -> Result<(), TestCaseError> {
    let toks = tokenize(src);
    check_spans(src, &toks)?;
    let sig: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let nodes = parse(&sig);
    check_nesting(&nodes, 0..sig.len())?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a real source at any point — mid-string, mid-comment,
    /// mid-token — still lexes and parses without panicking.
    #[test]
    fn truncated_workspace_sources_never_panic(
        file in 0usize..CORPUS_FILES.len(),
        frac in 0.0f64..=1.0,
    ) {
        let corpus = corpus();
        let src = &corpus[file];
        let cut = floor_char_boundary(src, (src.len() as f64 * frac) as usize);
        lex_parse_check(&src[..cut])?;
    }

    /// Splicing structural junk — stray braces, quotes, comment
    /// openers — into a real source never panics, and spans stay
    /// in-bounds for the mutated text.
    #[test]
    fn mutated_workspace_sources_never_panic(
        file in 0usize..CORPUS_FILES.len(),
        at_frac in 0.0f64..=1.0,
        cut_len in 0usize..64,
        junk_picks in proptest::collection::vec(0usize..JUNK.len(), 0..24),
    ) {
        let corpus = corpus();
        let src = &corpus[file];
        let junk: String = junk_picks.iter().map(|&k| JUNK[k]).collect();
        let at = floor_char_boundary(src, (src.len() as f64 * at_frac) as usize);
        let end = floor_char_boundary(src, at + cut_len);
        let mutated = format!("{}{}{}", &src[..at], junk, &src[end..]);
        lex_parse_check(&mutated)?;
    }

    /// Raw token soup (no resemblance to Rust at all) never panics.
    #[test]
    fn arbitrary_text_never_panics(
        points in proptest::collection::vec(0u32..0x11_0000, 0..200),
    ) {
        let src: String = points.iter().filter_map(|&p| char::from_u32(p)).collect();
        lex_parse_check(&src)?;
    }
}

/// The splice alphabet: every character that opens, closes, or escapes
/// a lexical or structural region, plus filler.
const JUNK: [char; 21] = [
    '{', '}', '(', ')', '[', ']', '"', '\'', '/', '*', '#', '!', '_', '=', '<', '>', ';', ',', 'a',
    ' ', '\n',
];

/// The corpus files themselves (unmutated) parse into a tree with at
/// least one `fn` — a canary against the parser silently degrading to
/// an empty forest on real code.
#[test]
fn corpus_files_produce_nonempty_trees() {
    use eavm_lint::parser::{walk, NodeKind};
    for (rel, src) in CORPUS_FILES.iter().zip(corpus()) {
        let toks = tokenize(&src);
        let sig: Vec<&Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let nodes = parse(&sig);
        let mut fns = 0usize;
        walk(&nodes, &mut |n, _| {
            if matches!(n.kind, NodeKind::Fn(_)) {
                fns += 1;
            }
        });
        assert!(fns > 0, "{rel}: no fn nodes parsed");
    }
}
