//! Fixture tests: for every rule, one snippet that fires, one that
//! must not, and one waived by an allow-pragma — plus pragma hygiene
//! and byte-determinism of the JSON report over a real on-disk tree.

use eavm_lint::{run_lint, scan_source, LintConfig, Rule};
use std::path::PathBuf;

fn scan(path: &str, src: &str) -> Vec<eavm_lint::Finding> {
    scan_source(path, src, &LintConfig::workspace_default())
}

fn violations(path: &str, src: &str) -> Vec<eavm_lint::Finding> {
    scan(path, src)
        .into_iter()
        .filter(|f| f.waived.is_none())
        .collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_wall_clock_reads() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    let found = violations("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D1);
    assert_eq!(found[0].snippet, "Instant::now");

    let sys = "fn f() -> SystemTime { SystemTime::now() }";
    assert_eq!(
        violations("crates/core/src/x.rs", sys)[0].snippet,
        "SystemTime::now"
    );
}

#[test]
fn d1_ignores_instant_types_strings_and_bench_crate() {
    // Mentioning the type, or the call inside a string, is not a read.
    let src = r#"fn f(t: Instant) { let s = "Instant::now()"; }"#;
    assert!(violations("crates/core/src/x.rs", src).is_empty());
    // The bench crate is wall-clock by nature.
    let timed = "fn f() { let t = Instant::now(); }";
    assert!(violations("crates/bench/src/bin/probe.rs", timed).is_empty());
}

#[test]
fn d1_waived_by_pragma() {
    let src = "fn f() {\n    // eavm-lint: allow(D1, reason = \"operator display only\")\n    let t = Instant::now();\n}";
    let found = scan("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].waived.as_deref(), Some("operator display only"));
    assert!(violations("crates/core/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_os_randomness() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }";
    let found = violations("crates/swf/src/gen.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D2);
    for banned in ["from_entropy", "OsRng", "getrandom", "RandomState"] {
        let src = format!("fn f() {{ let x = {banned}; }}");
        assert_eq!(
            violations("crates/swf/src/gen.rs", &src).len(),
            1,
            "{banned}"
        );
    }
}

#[test]
fn d2_ignores_seeded_generators() {
    let src = "fn f() { let rng = SplitMix64::new(42); let r = StdRng::seed_from_u64(7); }";
    assert!(violations("crates/swf/src/gen.rs", src).is_empty());
}

#[test]
fn d2_waived_by_pragma_same_line() {
    let src = "fn f() { let r = thread_rng(); } // eavm-lint: allow(D2, reason = \"fixture\")";
    let found = scan("crates/swf/src/gen.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].waived.is_some());
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_in_replay_critical_crates_only() {
    let src = "use std::collections::HashMap;";
    for path in [
        "crates/service/src/x.rs",
        "crates/simulator/src/x.rs",
        "crates/durability/src/x.rs",
        "crates/storage/src/x.rs",
        "crates/partitions/src/x.rs",
        "crates/scenario/src/x.rs",
        "crates/migrate/src/x.rs",
        "crates/overload/src/x.rs",
    ] {
        let found = violations(path, src);
        assert_eq!(found.len(), 1, "{path}");
        assert_eq!(found[0].rule, Rule::D3);
    }
    // Out of scope: the CLI is not replay-critical.
    assert!(violations("crates/cli/src/args.rs", src).is_empty());
    // HashSet is banned just like HashMap; BTreeMap never is.
    assert_eq!(
        violations("crates/service/src/x.rs", "use std::collections::HashSet;").len(),
        1
    );
    assert!(violations("crates/service/src/x.rs", "use std::collections::BTreeMap;").is_empty());
}

#[test]
fn d3_scenario_crate_positive_negative_pair() {
    // The scenario crate is replay-critical: an unordered map in the
    // compiler would let phase lowering drift between two runs of the
    // same file, breaking the CI byte-diff.
    let positive = "use std::collections::HashMap;\npub fn compile() {}";
    let found = violations("crates/scenario/src/compile.rs", positive);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D3);
    // The crate's actual idiom — ordered sets for duplicate-key
    // detection — stays clean.
    let negative = "use std::collections::BTreeSet;\npub fn parse() {}";
    assert!(violations("crates/scenario/src/parse.rs", negative).is_empty());
}

#[test]
fn d3_migrate_crate_positive_negative_pair() {
    // The migrate crate plans the migration schedule the service
    // journals and replays: an unordered map in `plan_moves` would let
    // the donor/receiver order drift between a live run and its crash
    // recovery, breaking verdict byte-parity.
    let positive = "use std::collections::HashMap;\npub fn plan_moves() {}";
    let found = violations("crates/migrate/src/policy.rs", positive);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D3);
    // The crate's actual idiom — index-ordered vectors — stays clean.
    let negative = "pub struct Hysteresis { cooldown: Vec<u32> }";
    assert!(violations("crates/migrate/src/policy.rs", negative).is_empty());
}

#[test]
fn d3_storage_crate_positive_negative_pair() {
    // The storage crate decides which operation a fault fires on: an
    // unordered map in the fault injector would reorder its PRNG draws
    // between two runs of the same seed, and the whole corruption
    // drill's "same seed, same damage, same scrub report" guarantee
    // falls apart.
    let positive = "use std::collections::HashMap;\npub fn inject() {}";
    let found = violations("crates/storage/src/faulty.rs", positive);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D3);
    // The crate's actual idiom — a seeded SplitMix64 stream — is clean.
    let negative = "pub struct FaultState { rng_state: u64, budget: u64 }";
    assert!(violations("crates/storage/src/faulty.rs", negative).is_empty());
}

#[test]
fn d3_and_d1_overload_crate_positive_negative_pair() {
    // The overload crate re-derives limiter/breaker state from the
    // journaled verdict stream: an unordered map over shards would let
    // AIMD cut order drift between a live run and its crash recovery,
    // and a wall-clock read would detach queue aging from the virtual
    // clock entirely.
    let positive = "use std::collections::HashMap;\npub fn on_shed() {}";
    let found = violations("crates/overload/src/lib.rs", positive);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D3);
    let clocky = "pub fn settle() { let t = std::time::Instant::now(); }";
    let found = violations("crates/overload/src/lib.rs", clocky);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D1);
    // The crate's actual idiom — a logical `now` advanced by journaled
    // submit/clock events over index-ordered limits — stays clean.
    let negative = "pub struct OverloadPlane { now: f64, limits: Vec<f64> }";
    assert!(violations("crates/overload/src/lib.rs", negative).is_empty());
}

#[test]
fn d3_skips_test_code() {
    let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}";
    assert!(violations("crates/service/src/x.rs", src).is_empty());
    let in_tests_dir = "use std::collections::HashMap;";
    assert!(violations("crates/service/tests/t.rs", in_tests_dir).is_empty());
}

#[test]
fn cfg_test_gates_one_item_not_the_rest_of_the_file() {
    // A mid-file test-only helper must not exempt the code below it.
    let src = "#[cfg(test)]\nfn helper() {}\nuse std::collections::HashMap;";
    let found = violations("crates/service/src/x.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::D3);
    // ... while a violation inside the gated item stays exempt.
    let gated = "#[cfg(test)]\nfn helper() {\n    use std::collections::HashMap;\n    let _m: HashMap<u32, u32> = HashMap::new();\n}";
    assert!(violations("crates/service/src/x.rs", gated).is_empty());
    // Brace-less gated items end at the semicolon.
    let braceless = "#[cfg(test)]\nmod tests;\nuse std::collections::HashSet;";
    assert_eq!(violations("crates/service/src/x.rs", braceless).len(), 1);
}

#[test]
fn d3_waived_by_pragma() {
    let src = "// eavm-lint: allow(D3, reason = \"point lookups only (never iterated)\")\nuse std::collections::HashMap;";
    let found = scan("crates/service/src/x.rs", src);
    assert_eq!(found.len(), 1);
    // A reason containing parens survives to the closing delimiter.
    assert_eq!(
        found[0].waived.as_deref(),
        Some("point lookups only (never iterated)")
    );
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_fires_on_panic_paths_in_shard_worker() {
    let path = "crates/service/src/shard.rs";
    assert_eq!(
        violations(path, "fn f(x: Option<u32>) -> u32 { x.unwrap() }")[0].snippet,
        ".unwrap()"
    );
    assert_eq!(
        violations(path, "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }")[0].snippet,
        ".expect()"
    );
    assert_eq!(
        violations(path, "fn f() { panic!(\"boom\"); }")[0].snippet,
        "panic!"
    );
    assert_eq!(
        violations(path, "fn f() { unreachable!(); }")[0].snippet,
        "unreachable!"
    );
    assert_eq!(
        violations(path, "fn f(v: &[u32]) -> u32 { v[0] }")[0].snippet,
        "v[..]"
    );
}

#[test]
fn p1_ignores_non_panicking_lookalikes_and_other_files() {
    let path = "crates/service/src/shard.rs";
    let benign = "fn f(x: Option<u32>, v: &[u32; 3], w: Vec<u32>) -> u32 {\n\
                  let [a, _b, _c] = *v;\n\
                  let d: [u32; 2] = [1, 2];\n\
                  #[allow(dead_code)]\n\
                  let e = vec![3];\n\
                  x.unwrap_or(0) + x.unwrap_or_default() + w.first().copied().unwrap_or(a) + d.first().copied().unwrap_or(0) + e.len() as u32\n\
                  }";
    assert!(
        violations(path, benign).is_empty(),
        "{:?}",
        violations(path, benign)
    );
    // The same panicky code outside the shard worker is out of scope.
    assert!(violations(
        "crates/service/src/service.rs",
        "fn f(v: &[u32]) -> u32 { v[0] }"
    )
    .is_empty());
    // Test code in the same file is exempt.
    let tail = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}";
    assert!(violations(path, tail).is_empty());
}

#[test]
fn p1_waived_by_pragma() {
    let src = "fn f() {\n    // eavm-lint: allow(P1, reason = \"injected-fault kill switch\")\n    panic!(\"injected\");\n}";
    let found = scan("crates/service/src/shard.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].waived.is_some());
}

// ---------------------------------------------------------------- C1

#[test]
fn c1_fires_on_bare_numeric_casts_in_codec() {
    let src = "fn f(v: &[u8]) -> u32 { v.len() as u32 }";
    let found = violations("crates/durability/src/codec.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::C1);
    assert_eq!(found[0].snippet, "as u32");
    assert_eq!(
        violations(
            "crates/durability/src/record.rs",
            "fn g(n: u32) -> usize { n as usize }"
        )
        .len(),
        1
    );
}

#[test]
fn c1_ignores_try_from_renames_and_other_files() {
    let path = "crates/durability/src/codec.rs";
    let checked = "fn f(v: &[u8]) -> u32 { u32::try_from(v.len()).unwrap_or(u32::MAX) }";
    assert!(violations(path, checked).is_empty());
    // `use x as y` is a rename, not a cast.
    assert!(violations(path, "use std::io::Error as IoError;").is_empty());
    // Casts elsewhere in the durability crate are out of C1's scope.
    assert!(violations(
        "crates/durability/src/wal.rs",
        "fn f(n: usize) -> u64 { n as u64 }"
    )
    .is_empty());
}

#[test]
fn c1_waived_by_pragma() {
    let src = "// eavm-lint: allow(C1, reason = \"table index, bounded by construction\")\nfn f(i: u32) -> usize { i as usize }";
    let found = scan("crates/durability/src/codec.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].waived.is_some());
}

// ------------------------------------------------------------ pragmas

#[test]
fn pragma_without_reason_is_malformed_and_waives_nothing() {
    let src = "// eavm-lint: allow(D1)\nlet t = Instant::now();";
    let found = scan("crates/core/src/x.rs", src);
    let rules: Vec<Rule> = found.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&Rule::Pragma), "{found:?}");
    assert!(
        found
            .iter()
            .any(|f| f.rule == Rule::D1 && f.waived.is_none()),
        "the D1 hit must stay unwaived: {found:?}"
    );
}

#[test]
fn pragma_with_unknown_rule_is_malformed() {
    let src = "// eavm-lint: allow(D9, reason = \"no such rule\")\nfn f() {}";
    let found = scan("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::Pragma);
}

#[test]
fn pragma_only_covers_its_own_rule_and_adjacent_lines() {
    // A D2 pragma does not waive a D1 hit — and, having waived
    // nothing, is itself reported stale.
    let src = "// eavm-lint: allow(D2, reason = \"wrong rule\")\nlet t = Instant::now();";
    let found = violations("crates/core/src/x.rs", src);
    assert_eq!(found.iter().filter(|f| f.rule == Rule::D1).count(), 1);
    assert_eq!(
        found
            .iter()
            .filter(|f| f.rule == Rule::UnusedWaiver)
            .count(),
        1
    );
    // Two lines below the pragma is out of its reach.
    let far =
        "// eavm-lint: allow(D1, reason = \"too far away\")\nfn f() {}\nlet t = Instant::now();";
    let found = violations("crates/core/src/x.rs", far);
    assert_eq!(found.iter().filter(|f| f.rule == Rule::D1).count(), 1);
    assert_eq!(
        found
            .iter()
            .filter(|f| f.rule == Rule::UnusedWaiver)
            .count(),
        1
    );
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_fires_on_float_comparisons_and_partial_cmp_unwrap() {
    let path = "crates/simulator/src/x.rs";
    // A float literal on either side is enough.
    let found = violations(path, "fn f(x: f64) -> bool { x == 0.0 }");
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D4);
    assert_eq!(found[0].snippet, "float ==");
    // No literal at all: both operands resolved via the symbol index.
    assert_eq!(
        violations(path, "fn f(a: f64, b: f64) -> bool { a != b }")[0].snippet,
        "float !="
    );
    // `partial_cmp` chained straight into unwrap/expect.
    assert_eq!(
        violations(
            path,
            "fn f(a: f64, b: f64) -> O { a.partial_cmp(&b).unwrap() }"
        )[0]
        .snippet,
        "partial_cmp(..).unwrap()"
    );
    assert_eq!(
        violations(
            path,
            "fn f(a: f64, b: f64) -> O { a.partial_cmp(&b).expect(\"fin\") }"
        )[0]
        .snippet,
        "partial_cmp(..).expect()"
    );
}

#[test]
fn d4_ignores_integer_eq_total_cmp_and_out_of_scope_crates() {
    let path = "crates/simulator/src/x.rs";
    assert!(violations(path, "fn f(n: u64) -> bool { n == 0 }").is_empty());
    assert!(violations(path, "fn f(a: f64, b: f64) -> O { a.total_cmp(&b) }").is_empty());
    // Unchained partial_cmp is fine — the caller handles the None.
    assert!(violations(
        path,
        "fn f(a: f64, b: f64) -> Option<O> { a.partial_cmp(&b) }"
    )
    .is_empty());
    // The bench crate computes wall-clock stats; D4 is scoped away.
    assert!(violations("crates/bench/src/x.rs", "fn f(x: f64) -> bool { x == 0.0 }").is_empty());
}

#[test]
fn d4_waived_by_pragma() {
    let src = "fn f(x: f64) -> bool {\n    // eavm-lint: allow(D4, reason = \"exact-zero sentinel\")\n    x == 0.0\n}";
    let found = scan("crates/simulator/src/x.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].waived.is_some());
    assert!(violations("crates/simulator/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------- P2

#[test]
fn p2_fires_on_blocking_io_in_shard_worker() {
    let path = "crates/service/src/shard.rs";
    assert_eq!(
        violations(path, "fn f() { println!(\"x\"); }")[0].snippet,
        "println!"
    );
    assert_eq!(
        violations(path, "fn f() { eprintln!(\"boom: {e}\"); }")[0].snippet,
        "eprintln!"
    );
    assert_eq!(
        violations(
            path,
            "fn f() -> Vec<u8> { std::fs::read(\"p\").unwrap_or_default() }"
        )[0]
        .snippet,
        "std::fs"
    );
    assert_eq!(
        violations(
            path,
            "fn f(buf: &mut String) { io::stdin().read_line(buf).ok(); }"
        )[0]
        .snippet,
        "stdin"
    );
}

#[test]
fn p2_ignores_formatting_channels_and_other_files() {
    let path = "crates/service/src/shard.rs";
    // In-memory formatting and channel sends are not blocking I/O.
    assert!(violations(path, "fn f(n: u32) -> String { format!(\"{n}\") }").is_empty());
    assert!(violations(path, "fn f(tx: &Sender<u32>) { let _ = tx.send(1); }").is_empty());
    // The same I/O outside the shard worker is out of scope.
    assert!(violations(
        "crates/service/src/service.rs",
        "fn f() { println!(\"x\"); }"
    )
    .is_empty());
    // Test code in the worker file is exempt.
    let tail = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"t\"); }\n}";
    assert!(violations(path, tail).is_empty());
}

#[test]
fn p2_waived_by_pragma() {
    let src = "fn f() {\n    // eavm-lint: allow(P2, reason = \"crash-drill breadcrumb\")\n    eprintln!(\"dying\");\n}";
    let found = scan("crates/service/src/shard.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].waived.is_some());
}

// ---------------------------------------------------------------- C2

#[test]
fn c2_fires_on_wildcard_arms_in_codec_fns() {
    let src = "impl Rec {\n    fn decode(tag: u8) -> Result<Rec, E> {\n        match tag {\n            1 => Ok(Rec::A),\n            _ => Ok(Rec::A),\n        }\n    }\n}";
    let found = violations("crates/durability/src/record.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::C2);
    assert_eq!(found[0].snippet, "`_ =>` in decode");
    // The storage crate's codecs are in scope too, and a nested match
    // inside an encode fn is still that fn's responsibility.
    let nested = "fn encode_header(h: &H) -> u8 {\n    match h.kind {\n        K::A => match h.sub {\n            0 => 1,\n            _ => 2,\n        },\n        K::B => 3,\n    }\n}";
    let found = violations("crates/storage/src/journal.rs", nested);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::C2);
}

#[test]
fn c2_ignores_binding_arms_non_codec_fns_and_inner_wildcards() {
    let path = "crates/durability/src/wal.rs";
    // A binding arm fails loudly on a new variant — that is the idiom
    // C2 pushes toward.
    let binding = "fn decode(tag: u8) -> Result<Rec, E> {\n    match tag {\n        1 => Ok(Rec::A),\n        tag => Err(E::UnknownTag(tag)),\n    }\n}";
    assert!(violations(path, binding).is_empty());
    // A wildcard in a *display* helper is not a codec hazard.
    let display = "fn shed_name(r: Reason) -> &'static str {\n    match r {\n        Reason::Full => \"full\",\n        _ => \"unknown\",\n    }\n}";
    assert!(violations(path, display).is_empty());
    // `_` inside a pattern (`Ok(_)`) is not a wildcard *arm*.
    let inner = "fn decode(r: R) -> u8 {\n    match r {\n        Ok(_) => 1,\n        Err(e) => e.code(),\n    }\n}";
    assert!(violations(path, inner).is_empty());
    // Out-of-scope crate: the CLI may match loosely.
    let loose = "fn decode_flag(s: &str) -> u8 { match s { \"a\" => 1, _ => 0 } }";
    assert!(violations("crates/cli/src/args.rs", loose).is_empty());
}

#[test]
fn c2_waived_by_pragma() {
    let src = "fn decode(tag: u8) -> u8 {\n    match tag {\n        1 => 1,\n        // eavm-lint: allow(C2, reason = \"legacy frames deliberately coerce to the null record\")\n        _ => 0,\n    }\n}";
    let found = scan("crates/durability/src/wal.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].waived.is_some());
}

// ---------------------------------------------------------------- W1

#[test]
fn w1_fires_on_ack_before_or_without_journal() {
    let path = "crates/service/src/x.rs";
    // Ack first, journal after: the crash window C2/W1 exist for.
    let inverted = "impl S {\n    fn admit(&mut self, t: u64, v: V) {\n        let _ = self.verdict_tx.send((t, v));\n        self.journal_append(&rec(t));\n    }\n}";
    let found = violations(path, inverted);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::W1);
    assert_eq!(
        found[0].snippet,
        "verdict_tx.send before any journal append"
    );
    // An execute with no journal call anywhere in the fn.
    let unjournaled = "impl S {\n    fn consolidate(&mut self, m: &Move) {\n        if self.execute_move(m, stall) {\n            self.tally += 1;\n        }\n    }\n}";
    let found = violations(path, unjournaled);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::W1);
}

#[test]
fn w1_ignores_journal_first_bodies_and_definitions() {
    let path = "crates/service/src/x.rs";
    // The correct discipline: journal, then ack — even conditionally.
    let correct = "impl S {\n    fn admit(&mut self, t: u64, v: V) {\n        if self.journal_append(&rec(t)) {\n            let _ = self.verdict_tx.send((t, v));\n        }\n    }\n    fn consolidate(&mut self, m: &Move) {\n        self.journal_append(&mig(m));\n        self.execute_move(m, stall);\n    }\n}";
    assert!(
        violations(path, correct).is_empty(),
        "{:?}",
        violations(path, correct)
    );
    // The `fn execute_move(` definition is not a call site.
    let def = "impl S {\n    fn execute_move(&mut self, m: &Move, stall: f64) -> bool {\n        self.apply(m)\n    }\n}";
    assert!(violations(path, def).is_empty());
    // Out of scope: only the service crate journals verdicts.
    let elsewhere = "fn f(tx: &T) { let _ = tx.verdict_tx.send((0, v)); }";
    assert!(violations("crates/simulator/src/x.rs", elsewhere).is_empty());
}

#[test]
fn w1_waived_by_pragma() {
    let src = "impl S {\n    fn replay(&mut self, t: u64, v: V) {\n        // eavm-lint: allow(W1, reason = \"recovery rebroadcast: the record being replayed IS the journal entry\")\n        let _ = self.verdict_tx.send((t, v));\n    }\n}";
    let found = scan("crates/service/src/x.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].waived.is_some());
}

// ------------------------------------------------------ unused-waiver

#[test]
fn stale_pragma_is_reported() {
    let src = "// eavm-lint: allow(D1, reason = \"was needed before the refactor\")\nfn f() -> u64 { 42 }";
    let found = violations("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::UnusedWaiver);
    assert!(found[0].snippet.contains("allow(D1)"));
}

#[test]
fn used_pragma_is_not_reported_stale() {
    let src = "// eavm-lint: allow(D1, reason = \"display only\")\nlet t = Instant::now();";
    let found = scan("crates/core/src/x.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].waived.is_some());
}

#[test]
fn doc_comment_pragmas_are_inert() {
    // A pragma inside documentation (like the examples in this crate's
    // own rustdoc) neither waives nor goes stale.
    let src = "//! ```text\n//! // eavm-lint: allow(D1, reason = \"docs example\")\n//! ```\nfn f() -> u64 { 7 }";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
    let block = "/** // eavm-lint: allow(D2) */\nfn f() -> u64 { 7 }";
    assert!(scan("crates/core/src/x.rs", block).is_empty());
}

#[test]
fn stale_pragma_not_reported_when_its_rule_is_out_of_scope() {
    // A D1 pragma in the bench crate: D1 never runs there, so the
    // checker cannot know whether the waiver is stale.
    let src = "// eavm-lint: allow(D1, reason = \"bench is wall-clock\")\nfn f() {}";
    assert!(violations("crates/bench/src/x.rs", src).is_empty());
}

#[test]
fn stale_pragma_not_reported_under_rules_filter() {
    use eavm_lint::parse_rule_list;
    let base = LintConfig::workspace_default();
    let src = "// eavm-lint: allow(D1, reason = \"stale\")\nfn f() -> u64 { 1 }";
    // Filtered to D3 + unused-waiver: D1 did not run, so its pragma is
    // not judged.
    let without_d1 = base.restricted(&parse_rule_list("D3,unused-waiver").expect("rules"));
    assert!(scan_source("crates/core/src/x.rs", src, &without_d1).is_empty());
    // With D1 in the run, the stale pragma is reported again.
    let with_d1 = base.restricted(&parse_rule_list("D1,unused-waiver").expect("rules"));
    let found = scan_source("crates/core/src/x.rs", src, &with_d1);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, Rule::UnusedWaiver);
}

#[test]
fn rule_list_rejects_unknown_ids() {
    use eavm_lint::parse_rule_list;
    let err = parse_rule_list("D1,bogus").expect_err("must reject");
    assert!(err.contains("bogus"), "{err}");
    assert!(err.contains("known rules"), "{err}");
    assert!(parse_rule_list("  ").is_err());
    let ok = parse_rule_list("W1, C2").expect("valid list");
    assert_eq!(ok.len(), 2);
}

// ------------------------------------------------------- determinism

/// Build a small workspace-shaped tree on disk, lint it twice, and
/// require byte-identical reports — the same property CI relies on for
/// the real tree.
#[test]
fn json_report_is_byte_deterministic_across_runs() {
    let root = std::env::temp_dir().join(format!("eavm-lint-fixture-{}", std::process::id()));
    let write = |rel: &str, body: &str| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, body).expect("write fixture");
    };
    write(
        "crates/zeta/src/lib.rs",
        "pub fn f() { let t = Instant::now(); }\n",
    );
    write(
        "crates/alpha/src/lib.rs",
        "pub fn g() { let r = thread_rng(); }\n",
    );
    write(
        "crates/service/src/shard.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n// eavm-lint: allow(P1, reason = \"fixture\")\nfn g() { panic!(\"waived\"); }\n",
    );
    write("src/lib.rs", "pub fn root() {}\n");

    let a = run_lint(&root).expect("first run");
    let b = run_lint(&root).expect("second run");
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_text(), b.render_text());

    // Findings are path-sorted: alpha before service before zeta.
    let paths: Vec<&str> = a.violations().map(|f| f.path.as_str()).collect();
    assert_eq!(
        paths,
        [
            "crates/alpha/src/lib.rs",
            "crates/service/src/shard.rs",
            "crates/zeta/src/lib.rs"
        ]
    );
    assert_eq!(a.waived().count(), 1);
    assert_eq!(a.files_scanned, 4);

    std::fs::remove_dir_all(&root).expect("cleanup");

    // And the rendered JSON is structurally what CI's --format json
    // consumers expect.
    let json = a.render_json();
    assert!(json.contains("\"violation_count\": 3"), "{json}");
    assert!(json.contains("\"waived_count\": 1"), "{json}");
}

/// The tool must pass on its own workspace — the same gate CI runs.
/// (Kept here rather than only in ci/check.sh so `cargo test` alone
/// catches a freshly introduced violation.)
#[test]
fn own_workspace_is_clean() {
    // crates/lint/tests -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    if !root.join("Cargo.toml").exists() {
        return; // sdist-style layout; CI covers this via the CLI.
    }
    let report = run_lint(&root).expect("lint own tree");
    let bad: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{} {} {}", f.path, f.line, f.rule.id(), f.snippet))
        .collect();
    assert!(
        bad.is_empty(),
        "unwaived violations in the workspace:\n{}",
        bad.join("\n")
    );
    // The v2 audit left reasoned D4 waivers behind (exact-zero
    // sentinels, trace-identity grouping); their presence proves the
    // new rules actually ran over the tree.
    assert!(
        report.waived().any(|f| f.rule == Rule::D4),
        "expected the workspace's D4 waivers in the audit trail"
    );
}
