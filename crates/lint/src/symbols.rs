//! Per-file symbol index: which identifiers are *declared* with a
//! float type. This is what lets D4 flag `threshold == limit` (both
//! `f64` locals) without a type checker: the index records every
//! `name: f64` / `name: f32` declaration site — let bindings, fn
//! params, struct fields, consts — and D4 treats an indexed name as a
//! float operand anywhere else in the same file. Heuristic by design:
//! a file-local over-approximation is the right bias for a determinism
//! lint (false positives are waivable; false negatives rot silently).

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Names declared with a float type anywhere in one file.
#[derive(Debug, Default)]
pub struct FloatIndex {
    names: BTreeSet<String>,
}

impl FloatIndex {
    /// Build the index from a file's significant (non-comment) tokens.
    ///
    /// A declaration is `Ident ':' <f32|f64>` where the colon is not
    /// part of a `::` path and only `&`, `mut`, and lifetimes sit
    /// between the colon and the type. `x: Option<f64>` and friends are
    /// deliberately not indexed — comparing a wrapped float compares
    /// the wrapper.
    pub fn build(toks: &[&Tok]) -> FloatIndex {
        let mut names = BTreeSet::new();
        for i in 0..toks.len() {
            let t = toks[i];
            if t.kind != TokKind::Ident || t.text == "_" {
                continue;
            }
            if punct(toks, i + 1) != Some(':') {
                continue;
            }
            // `foo::bar` / `match x { Variant :: .. }` are paths, and a
            // preceding `:` means *this* ident is the type position.
            if punct(toks, i + 2) == Some(':') || punct(toks, i.wrapping_sub(1)) == Some(':') {
                continue;
            }
            let mut j = i + 2;
            while matches!(punct(toks, j), Some('&')) || lifetime(toks, j) || mut_kw(toks, j) {
                j += 1;
            }
            if let Some(ty) = toks.get(j) {
                if ty.kind == TokKind::Ident && (ty.text == "f64" || ty.text == "f32") {
                    names.insert(t.text.clone());
                }
            }
        }
        FloatIndex { names }
    }

    /// Is `name` declared as a float somewhere in this file?
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

fn punct(toks: &[&Tok], i: usize) -> Option<char> {
    toks.get(i).and_then(|t| match t.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    })
}

fn lifetime(toks: &[&Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Lifetime)
}

fn mut_kw(toks: &[&Tok], i: usize) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut")
}

/// Does this token spell a float literal? Catches `1.5`, `1e9`, `2f64`,
/// `1.0f32` — but not hex/octal/binary (whose letters are digits, not
/// exponents).
pub fn is_float_literal(t: &Tok) -> bool {
    if t.kind != TokKind::Number {
        return false;
    }
    let s = t.text.as_str();
    if s.starts_with("0x") || s.starts_with("0X") || s.starts_with("0o") || s.starts_with("0b") {
        return false;
    }
    s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.ends_with("f64")
        || s.ends_with("f32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn index(src: &str) -> FloatIndex {
        let toks = tokenize(src);
        let sig: Vec<&Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        FloatIndex::build(&sig)
    }

    #[test]
    fn declarations_are_indexed() {
        let idx = index("fn f(rate: f64, n: u64) { let x: f32 = 0.0; let y: &mut f64 = r; }");
        assert!(idx.contains("rate"));
        assert!(idx.contains("x"));
        assert!(idx.contains("y"));
        assert!(!idx.contains("n"));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn paths_and_wrappers_are_not_indexed() {
        let idx = index("let a = mod_a::f64_helper(); struct S { opt: Option<f64> }");
        assert!(idx.is_empty());
    }

    #[test]
    fn float_literal_shapes() {
        let lit = |src: &str| {
            let toks = tokenize(src);
            is_float_literal(&toks[0])
        };
        assert!(lit("1.5"));
        assert!(lit("1e9"));
        assert!(lit("2f64"));
        assert!(lit("0.0"));
        assert!(!lit("42"));
        assert!(!lit("0xFF"));
        assert!(!lit("0b101"));
        assert!(!lit("1_000"));
    }
}
