//! Deterministic report rendering: human text, JSON, and SARIF 2.1.0,
//! all sorted by (path, line, rule) and free of timestamps, absolute
//! paths, or map iteration — two runs over the same tree are
//! byte-identical, whatever order the per-file scans ran in.

use crate::rules::{Finding, Rule};

/// The outcome of a lint run over a tree.
#[derive(Debug, Clone)]
pub struct Report {
    /// All findings, sorted; waived ones carry their pragma reason.
    pub findings: Vec<Finding>,
    /// Files scanned (workspace-relative, sorted).
    pub files_scanned: usize,
}

impl Report {
    /// Unwaived violations — what `--deny` counts.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Pragma-waived sites, for the audit trail.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_some())
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::from("eavm-lint report\n");
        let violations: Vec<&Finding> = self.violations().collect();
        if violations.is_empty() {
            out.push_str("  no violations\n");
        } else {
            for f in &violations {
                out.push_str(&format!(
                    "  {}:{} {} {} — {}\n",
                    f.path,
                    f.line,
                    f.rule.id(),
                    f.snippet,
                    f.rule.invariant()
                ));
            }
        }
        let waived: Vec<&Finding> = self.waived().collect();
        if !waived.is_empty() {
            out.push_str("waived sites\n");
            for f in &waived {
                out.push_str(&format!(
                    "  {}:{} {} {} (reason: {})\n",
                    f.path,
                    f.line,
                    f.rule.id(),
                    f.snippet,
                    f.waived.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "files scanned: {}  violations: {}  waived: {}\n",
            self.files_scanned,
            violations.len(),
            waived.len()
        ));
        out
    }

    /// JSON report. Hand-rendered (the workspace is dependency-free)
    /// with sorted arrays and escaped strings, so it is byte-stable.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        append_findings(&mut out, self.violations());
        out.push_str("],\n  \"waived\": [");
        append_findings(&mut out, self.waived());
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"violation_count\": {},\n  \"waived_count\": {}\n}}\n",
            self.files_scanned,
            self.violations().count(),
            self.waived().count()
        ));
        out
    }

    /// SARIF 2.1.0 report — the interchange format code-scanning UIs
    /// ingest. One run, one rule descriptor per [`Rule`], one result
    /// per finding (path-sorted, like every other format). Waived
    /// findings are emitted at level `"note"` with an `inSource`
    /// suppression carrying the pragma reason, so a SARIF viewer shows
    /// the same audit trail as the text report.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
             \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
             \"tool\": {\n        \"driver\": {\n          \"name\": \"eavm-lint\",\n          \
             \"rules\": [",
        );
        let mut first = true;
        for rule in Rule::ALL {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_str(rule.id()),
                json_str(rule.invariant())
            ));
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        first = true;
        for f in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            let level = if f.waived.is_some() { "note" } else { "error" };
            out.push_str(&format!(
                "\n        {{\n          \"ruleId\": {}, \"level\": {},\n          \
                 \"message\": {{\"text\": {}}},\n          \"locations\": [{{\
                 \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]",
                json_str(f.rule.id()),
                json_str(level),
                json_str(&format!("{} — {}", f.snippet, f.rule.invariant())),
                json_str(&f.path),
                f.line
            ));
            if let Some(reason) = &f.waived {
                out.push_str(&format!(
                    ",\n          \"suppressions\": [{{\"kind\": \"inSource\", \
                     \"justification\": {}}}]",
                    json_str(reason)
                ));
            }
            out.push_str("\n        }");
        }
        if !first {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

fn append_findings<'a>(out: &mut String, findings: impl Iterator<Item = &'a Finding>) {
    let mut first = true;
    for f in findings {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}",
            json_str(&f.path),
            f.line,
            json_str(f.rule.id()),
            json_str(&f.snippet)
        ));
        if let Some(reason) = &f.waived {
            out.push_str(&format!(", \"reason\": {}", json_str(reason)));
        }
        out.push('}');
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(path: &str, line: u32, waived: Option<&str>) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule: Rule::D1,
            snippet: "Instant::now".into(),
            waived: waived.map(String::from),
        }
    }

    #[test]
    fn text_report_lists_violations_then_waivers() {
        let report = Report {
            findings: vec![finding("a.rs", 3, None), finding("b.rs", 9, Some("gated"))],
            files_scanned: 2,
        };
        let text = report.render_text();
        assert!(text.contains("a.rs:3 D1 Instant::now"));
        assert!(text.contains("b.rs:9 D1 Instant::now (reason: gated)"));
        assert!(text.contains("files scanned: 2  violations: 1  waived: 1"));
    }

    #[test]
    fn sarif_has_rules_results_and_suppressions() {
        let report = Report {
            findings: vec![finding("a.rs", 3, None), finding("b.rs", 9, Some("gated"))],
            files_scanned: 2,
        };
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"eavm-lint\""));
        // Every rule gets a descriptor.
        for rule in Rule::ALL {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", rule.id())));
        }
        assert!(sarif.contains("\"uri\": \"a.rs\""));
        assert!(sarif.contains("\"startLine\": 3"));
        // The waived finding downgrades to a note with a suppression.
        assert!(sarif.contains("\"level\": \"note\""));
        assert!(sarif.contains("\"justification\": \"gated\""));
        // Rendering is a pure function of the findings.
        assert_eq!(sarif, report.render_sarif());
    }

    #[test]
    fn sarif_empty_report_is_well_formed() {
        let report = Report {
            findings: vec![],
            files_scanned: 0,
        };
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"results\": []"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: vec![finding("a \"b\".rs", 1, None)],
            files_scanned: 1,
        };
        let json = report.render_json();
        assert!(json.contains(r#""path": "a \"b\".rs""#));
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\"waived\": []"));
    }
}
