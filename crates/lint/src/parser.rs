//! A lightweight item/brace-tree parser on top of the lexer: just
//! enough structure for rules that reason about *where* a token sits —
//! which `fn` body it is in, whether it is a top-level `match` arm,
//! how deep the block nesting goes. Deliberately not a full AST: the
//! tree only records `fn`/`impl`/`mod`/`match` items and anonymous
//! blocks, each with the token-index range of its brace-delimited body.
//!
//! Like the lexer, parsing never fails and never panics: unbalanced
//! braces, truncated items, and token soup all degrade to a best-effort
//! tree, because the proptest corpus feeds this module mutilated copies
//! of real workspace sources.

use crate::lexer::{Tok, TokKind};

/// What introduced a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// `fn name(...) { ... }` — the function's identifier.
    Fn(String),
    /// `impl ... { ... }` — the first type-ish identifier after `impl`.
    Impl(String),
    /// `mod name { ... }`.
    Mod(String),
    /// `match scrutinee { arms }`.
    Match,
    /// A bare `{ ... }` block (loop bodies, closures, arm bodies, ...).
    Block,
}

/// One node of the brace tree. Ranges index into the significant-token
/// slice the tree was parsed from (comments excluded), so rules can
/// walk `tokens[node.body.clone()]` directly.
#[derive(Debug)]
pub struct Node {
    pub kind: NodeKind,
    /// Index of the introducing token (`fn`, `impl`, `match`, or `{`).
    pub start: usize,
    /// Token-index range strictly between the body's braces.
    pub body: std::ops::Range<usize>,
    /// Source line of the introducing token.
    pub line: u32,
    pub children: Vec<Node>,
}

/// Nested blocks beyond this depth are consumed without growing the
/// tree — a backstop against stack exhaustion on adversarial input
/// (real workspace code nests ~10 deep).
const MAX_DEPTH: usize = 256;

/// Parse the significant-token stream into a forest of items/blocks.
pub fn parse(toks: &[&Tok]) -> Vec<Node> {
    let mut i = 0;
    let mut roots = Vec::new();
    parse_region(toks, &mut i, 0, &mut roots);
    // Stray closing braces at top level: skip and keep going, so one
    // unbalanced `}` does not hide the rest of the file.
    while i < toks.len() {
        i += 1;
        parse_region(toks, &mut i, 0, &mut roots);
    }
    roots
}

fn punct(toks: &[&Tok], i: usize) -> Option<char> {
    toks.get(i).and_then(|t| match t.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    })
}

fn ident<'a>(toks: &'a [&'a Tok], i: usize) -> Option<&'a str> {
    toks.get(i)
        .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

/// Parse items/blocks until an unmatched `}` (left unconsumed) or end
/// of input.
fn parse_region(toks: &[&Tok], i: &mut usize, depth: usize, out: &mut Vec<Node>) {
    while *i < toks.len() {
        match ident(toks, *i) {
            Some("fn") => {
                let name = ident(toks, *i + 1).unwrap_or("").to_string();
                item(toks, i, depth, NodeKind::Fn(name), out);
            }
            Some("impl") => {
                let name = first_ident_after(toks, *i + 1);
                item(toks, i, depth, NodeKind::Impl(name), out);
            }
            Some("mod") if ident(toks, *i + 1).is_some() => {
                let name = ident(toks, *i + 1).unwrap_or("").to_string();
                item(toks, i, depth, NodeKind::Mod(name), out);
            }
            Some("match") => item(toks, i, depth, NodeKind::Match, out),
            _ => match punct(toks, *i) {
                Some('{') => block(toks, i, depth, NodeKind::Block, *i, out),
                Some('}') => return,
                _ => *i += 1,
            },
        }
    }
}

/// The first identifier after `impl` (skipping `<`, `&`, lifetimes):
/// informational only, good enough to label `impl Foo for Bar`.
fn first_ident_after(toks: &[&Tok], from: usize) -> String {
    toks[from.min(toks.len())..]
        .iter()
        .take(8)
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// Parse one item introduced at `*i`: scan forward to its body `{`
/// (tracking paren/bracket depth so `fn f(x: [u8; 2])` does not trip)
/// or to a `;` for body-less items, then descend into the body.
fn item(toks: &[&Tok], i: &mut usize, depth: usize, kind: NodeKind, out: &mut Vec<Node>) {
    let start = *i;
    let mut j = *i + 1;
    let mut nest = 0usize;
    let body_open = loop {
        match punct(toks, j) {
            None if j >= toks.len() => break None,
            Some('(') | Some('[') => nest += 1,
            Some(')') | Some(']') => nest = nest.saturating_sub(1),
            Some('{') if nest == 0 => break Some(j),
            // An unmatched `}` before any `{`: the item is truncated
            // garbage — stop without consuming the brace so the caller
            // can close its own region.
            Some('}') if nest == 0 => break None,
            Some(';') if nest == 0 => {
                // Body-less item (`fn f();`, `mod tests;`): consume
                // through the semicolon, no node.
                *i = j + 1;
                return;
            }
            _ => {}
        }
        j += 1;
    };
    match body_open {
        Some(open) => {
            *i = open;
            block(toks, i, depth, kind, start, out);
        }
        None => {
            // Truncated input: advance past the introducing token only,
            // so the scan always makes progress.
            *i = start + 1;
        }
    }
}

/// `*i` sits on a `{`: parse the node's body (recursively below the
/// depth cap, flat brace-counting beyond it) and push the node.
fn block(
    toks: &[&Tok],
    i: &mut usize,
    depth: usize,
    kind: NodeKind,
    start: usize,
    out: &mut Vec<Node>,
) {
    let open = *i;
    *i += 1;
    let mut children = Vec::new();
    if depth < MAX_DEPTH {
        parse_region(toks, i, depth + 1, &mut children);
    } else {
        // Too deep to recurse: consume the balanced region flat.
        let mut level = 0usize;
        while *i < toks.len() {
            match punct(toks, *i) {
                Some('{') => level += 1,
                Some('}') if level == 0 => break,
                Some('}') => level -= 1,
                _ => {}
            }
            *i += 1;
        }
    }
    let body = (open + 1)..*i;
    if punct(toks, *i) == Some('}') {
        *i += 1; // consume the matching close
    }
    let line = toks.get(start).map(|t| t.line).unwrap_or(0);
    out.push(Node {
        kind,
        start,
        body,
        line,
        children,
    });
}

/// Depth-first walk over a forest, visiting every node with the stack
/// of enclosing nodes (outermost first, `node` itself excluded).
pub fn walk<'a>(nodes: &'a [Node], visit: &mut impl FnMut(&'a Node, &[&'a Node])) {
    fn go<'a>(
        nodes: &'a [Node],
        stack: &mut Vec<&'a Node>,
        visit: &mut impl FnMut(&'a Node, &[&'a Node]),
    ) {
        for node in nodes {
            visit(node, stack);
            stack.push(node);
            go(&node.children, stack, visit);
            stack.pop();
        }
    }
    go(nodes, &mut Vec::new(), visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn tree(src: &str) -> (Vec<crate::lexer::Tok>, Vec<Node>) {
        let toks = tokenize(src);
        let sig: Vec<&crate::lexer::Tok> = toks
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    crate::lexer::TokKind::LineComment | crate::lexer::TokKind::BlockComment
                )
            })
            .collect();
        let nodes = parse(&sig);
        (toks.clone(), nodes)
    }

    #[test]
    fn fn_impl_match_nesting() {
        let src = "impl Foo { fn encode(&self) -> u8 { match self { A => 1, _ => 0 } } }";
        let (_, nodes) = tree(src);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].kind, NodeKind::Impl("Foo".into()));
        let f = &nodes[0].children[0];
        assert_eq!(f.kind, NodeKind::Fn("encode".into()));
        assert_eq!(f.children[0].kind, NodeKind::Match);
    }

    #[test]
    fn body_ranges_cover_exactly_the_braced_tokens() {
        let src = "fn f(v: [u8; 2]) { a; b } fn g() {}";
        let (_, nodes) = tree(src);
        assert_eq!(nodes.len(), 2);
        let f = &nodes[0];
        // body = the `a ; b` tokens between the braces.
        assert_eq!(f.body.len(), 3);
        assert!(nodes[1].body.is_empty());
    }

    #[test]
    fn bodyless_and_truncated_items_do_not_derail() {
        let (_, nodes) = tree("fn declared(); mod tests; fn real() { x }");
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].kind, NodeKind::Fn("real".into()));
        // Unbalanced input: no panic, best-effort tree.
        let (_, nodes) = tree("fn f() { { } ");
        assert_eq!(nodes.len(), 1);
        let (_, nodes) = tree("} } fn g() { }");
        assert_eq!(nodes.len(), 1);
        let (_, nodes) = tree("fn truncated");
        assert!(nodes.is_empty());
    }

    #[test]
    fn walk_reports_enclosing_stack() {
        let src = "fn outer() { match x { _ => { inner } } }";
        let (_, nodes) = tree(src);
        let mut saw_match_in_fn = false;
        walk(&nodes, &mut |node, stack| {
            if node.kind == NodeKind::Match {
                saw_match_in_fn = stack
                    .iter()
                    .any(|n| matches!(&n.kind, NodeKind::Fn(name) if name == "outer"));
            }
        });
        assert!(saw_match_in_fn);
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let mut src = String::from("fn f() ");
        for _ in 0..2000 {
            src.push('{');
        }
        for _ in 0..2000 {
            src.push('}');
        }
        let (_, nodes) = tree(&src);
        assert_eq!(nodes.len(), 1); // no stack overflow, tree capped
    }
}
