//! # eavm-lint — workspace invariant checker
//!
//! Statically enforces the source-level invariants every bit-exact
//! guarantee in this reproduction rests on: deterministic replay vs
//! `Simulation::run`, replay unchanged with telemetry enabled,
//! byte-identical chaos under a fixed fault seed, and byte-identical
//! verdict logs across crash/recovery. Replay tests catch a violated
//! invariant only when a seed happens to exercise it; this tool catches
//! the violation at the source line, before it ships.
//!
//! The rules (see [`Rule`]):
//!
//! | rule | invariant | default scope |
//! |------|-----------|---------------|
//! | D1   | no `Instant::now`/`SystemTime::now` | everything but `crates/bench` |
//! | D2   | no OS randomness (`thread_rng`, ...) | everywhere |
//! | D3   | no `HashMap`/`HashSet` | replay-critical crates, non-test |
//! | P1   | no `unwrap`/`expect`/`panic!`/indexing | shard worker (`shard.rs`) |
//! | C1   | no bare `as` numeric casts | durability codec/record |
//!
//! Violations are waived only by an inline pragma with a mandatory
//! reason; the report records every waiver, so the audit trail is the
//! report itself:
//!
//! ```text
//! // eavm-lint: allow(D1, reason = "telemetry-gated; never on replay path")
//! let t0 = self.telemetry.is_enabled().then(Instant::now);
//! ```
//!
//! The crate is dependency-free: it ships its own minimal Rust lexer
//! (the `lexer` module) — comments, strings, raw strings, idents,
//! punctuation — because rule patterns only ever span a few adjacent
//! tokens.

#![forbid(unsafe_code)]

mod lexer;
mod report;
mod rules;

use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{scan_source, Finding, LintConfig, Rule, Scope};

/// Lint every `.rs` file under `root`'s workspace source roots
/// (`src/`, `tests/`, `crates/*/src`, `crates/*/tests`) against the
/// default rule set. File order, and therefore report byte layout, is
/// deterministic: paths are collected sorted.
pub fn run_lint(root: &Path) -> Result<Report, String> {
    run_lint_with(root, &LintConfig::workspace_default())
}

/// As [`run_lint`] with an explicit rule set.
pub fn run_lint_with(root: &Path, config: &LintConfig) -> Result<Report, String> {
    let mut files = Vec::new();
    for dir in source_roots(root)? {
        collect_rs_files(&dir, &mut files)?;
    }
    let mut rels: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|abs| (relative_slash_path(root, &abs), abs))
        .collect();
    rels.sort();

    let mut findings = Vec::new();
    let files_scanned = rels.len();
    for (rel, abs) in rels {
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        findings.extend(scan_source(&rel, &src, config));
    }
    findings.sort();
    Ok(Report {
        findings,
        files_scanned,
    })
}

/// The directories walked: top-level `src`/`tests` plus each crate's
/// `src`/`tests`. Vendored stand-ins and `target/` are never walked.
fn source_roots(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut roots = vec![root.join("src"), root.join("tests")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("reading {}: {e}", crates.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            roots.push(entry.join("src"));
            roots.push(entry.join("tests"));
        }
    }
    Ok(roots.into_iter().filter(|p| p.is_dir()).collect())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes, so scoping and report
/// bytes are identical regardless of platform or invocation directory.
fn relative_slash_path(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
