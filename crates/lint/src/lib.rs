//! # eavm-lint — workspace invariant checker
//!
//! Statically enforces the source-level invariants every bit-exact
//! guarantee in this reproduction rests on: deterministic replay vs
//! `Simulation::run`, replay unchanged with telemetry enabled,
//! byte-identical chaos under a fixed fault seed, and byte-identical
//! verdict logs across crash/recovery. Replay tests catch a violated
//! invariant only when a seed happens to exercise it; this tool catches
//! the violation at the source line, before it ships.
//!
//! The rules (see [`Rule`]):
//!
//! | rule | invariant | default scope |
//! |------|-----------|---------------|
//! | D1   | no `Instant::now`/`SystemTime::now` | everything but `crates/bench` |
//! | D2   | no OS randomness (`thread_rng`, ...) | everywhere |
//! | D3   | no `HashMap`/`HashSet` | replay-critical crates, non-test |
//! | D4   | no float `==`/`!=`, no `partial_cmp().unwrap()` | replay-critical crates, non-test |
//! | P1   | no `unwrap`/`expect`/`panic!`/indexing | shard worker (`shard.rs`) |
//! | P2   | no blocking I/O (`std::fs`, `println!`, stdin) | shard worker (`shard.rs`) |
//! | C1   | no bare `as` numeric casts | durability codec/record |
//! | C2   | no `_ =>` arms in `encode`/`decode` matches | durability + storage |
//! | W1   | journal append precedes ack/execute in source order | service crate |
//!
//! D1–D4, P1/P2, and C1 are token patterns; C2 and W1 are structural —
//! they walk the brace tree built by the `parser` module (fn/impl/
//! match/block nesting, no full AST) and consult the per-file float
//! symbol index (`symbols`).
//!
//! Violations are waived only by an inline pragma with a mandatory
//! reason; the report records every waiver, so the audit trail is the
//! report itself:
//!
//! ```text
//! // eavm-lint: allow(D1, reason = "telemetry-gated; never on replay path")
//! let t0 = self.telemetry.is_enabled().then(Instant::now);
//! ```
//!
//! A well-formed pragma whose line no longer violates its rule is
//! itself reported (`unused-waiver`) — waivers are pruned with the code
//! they excused, never left to rot. Pragmas inside doc comments (like
//! the example above) are inert.
//!
//! The crate is dependency-free: it ships its own minimal Rust lexer
//! (the `lexer` module) — comments, strings, raw strings, idents,
//! punctuation — and the brace-tree parser on top of it.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod parser;
mod report;
mod rules;
pub mod symbols;

use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{parse_rule_list, scan_source, Finding, LintConfig, Rule, Scope};

/// Lint every `.rs` file under `root`'s workspace source roots
/// (`src/`, `tests/`, `crates/*/src`, `crates/*/tests`) against the
/// default rule set.
pub fn run_lint(root: &Path) -> Result<Report, String> {
    run_lint_with(root, &LintConfig::workspace_default())
}

/// As [`run_lint`] with an explicit rule set.
///
/// Files are scanned in parallel (scoped threads, round-robin file
/// assignment), but the merged report is order-independent: findings
/// carry a total order (path, line, rule, snippet, waived) and the
/// merge ends with one sort, so the report bytes are identical to a
/// sequential run whatever the thread interleaving was.
pub fn run_lint_with(root: &Path, config: &LintConfig) -> Result<Report, String> {
    let mut files = Vec::new();
    for dir in source_roots(root)? {
        collect_rs_files(&dir, &mut files)?;
    }
    let mut rels: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|abs| (relative_slash_path(root, &abs), abs))
        .collect();
    rels.sort();
    let files_scanned = rels.len();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
        .min(rels.len().max(1));

    let mut findings = Vec::new();
    if workers <= 1 {
        for (rel, abs) in &rels {
            findings.extend(scan_file(rel, abs, config)?);
        }
    } else {
        let chunks: Vec<Result<Vec<Finding>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let rels = &rels;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for (rel, abs) in rels.iter().skip(w).step_by(workers) {
                            out.extend(scan_file(rel, abs, config)?);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("scan worker panicked".into()))
                })
                .collect()
        });
        for chunk in chunks {
            findings.extend(chunk?);
        }
    }
    findings.sort();
    Ok(Report {
        findings,
        files_scanned,
    })
}

fn scan_file(rel: &str, abs: &Path, config: &LintConfig) -> Result<Vec<Finding>, String> {
    let src =
        std::fs::read_to_string(abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
    Ok(scan_source(rel, &src, config))
}

/// The directories walked: top-level `src`/`tests` plus each crate's
/// `src`/`tests`. Vendored stand-ins and `target/` are never walked.
fn source_roots(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut roots = vec![root.join("src"), root.join("tests")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("reading {}: {e}", crates.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            roots.push(entry.join("src"));
            roots.push(entry.join("tests"));
        }
    }
    Ok(roots.into_iter().filter(|p| p.is_dir()).collect())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes, so scoping and report
/// bytes are identical regardless of platform or invocation directory.
fn relative_slash_path(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
