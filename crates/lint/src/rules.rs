//! The invariant rules and the per-file scanner.
//!
//! Two kinds of rule run over a file. *Token rules* (D1–D4, P1, P2, C1)
//! are patterns over a few adjacent non-comment tokens, some informed
//! by the per-file float-symbol index. *Structural rules* (C2, W1) walk
//! the brace tree from [`crate::parser`]: C2 inspects `match` arms
//! inside codec functions, W1 checks source-order dominance of journal
//! calls over ack calls within a function body.
//!
//! Violations are waivable only by an inline pragma
//!
//! ```text
//! // eavm-lint: allow(D1, reason = "telemetry-gated; never on replay path")
//! ```
//!
//! on the same line as the violation or on the line immediately above
//! it. A pragma without a `reason` never waives — it is itself reported
//! as a malformed-pragma violation, so justification is mandatory. And
//! a well-formed pragma that waives *nothing* is reported too
//! (`unused-waiver`), so waivers are pruned when the code they excused
//! is fixed. Pragmas inside doc comments (`///`, `//!`, `/**`, `/*!`)
//! are documentation, not directives: never parsed, never stale.

use crate::lexer::{tokenize, Tok, TokKind};
use crate::parser::{self, NodeKind};
use crate::symbols::{is_float_literal, FloatIndex};
use std::collections::BTreeSet;

/// Stable rule identifiers (these appear in pragmas and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No wall-clock reads (`Instant::now` / `SystemTime::now`).
    D1,
    /// No OS randomness (`thread_rng`, `from_entropy`, `OsRng`, ...).
    D2,
    /// No default-hasher `HashMap`/`HashSet` in replay-critical crates.
    D3,
    /// No float `==`/`!=` or `partial_cmp(..).unwrap()` in
    /// replay-critical crates; use `total_cmp` or epsilon helpers.
    D4,
    /// No `unwrap`/`expect`/`panic!`/slice-indexing in worker hot paths.
    P1,
    /// No blocking I/O (`std::fs`, `println!`, stdin) in worker hot paths.
    P2,
    /// No bare `as` narrowing casts in durability codec/record code.
    C1,
    /// No `_ =>` wildcard arms in `encode`/`decode` matches — a
    /// wildcard silently swallows a newly added variant or record tag.
    C2,
    /// Journal/WAL append must precede the corresponding ack/execute in
    /// source order within a service function body.
    W1,
    /// A well-formed pragma whose line no longer violates anything.
    UnusedWaiver,
    /// A pragma that cannot waive anything (unknown rule or no reason).
    Pragma,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::P1,
        Rule::P2,
        Rule::C1,
        Rule::C2,
        Rule::W1,
        Rule::UnusedWaiver,
        Rule::Pragma,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::W1 => "W1",
            Rule::UnusedWaiver => "unused-waiver",
            Rule::Pragma => "pragma",
        }
    }

    /// Rules a pragma may name. The meta rules (`pragma`,
    /// `unused-waiver`) are deliberately unwaivable: a waiver for "this
    /// waiver is broken" would be an audit hole.
    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .filter(|r| !matches!(r, Rule::UnusedWaiver | Rule::Pragma))
            .find(|r| r.id() == id)
    }

    /// Rules a `--rules` filter may name (all of them, meta included).
    pub fn from_filter_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line statement of the invariant, for reports.
    pub fn invariant(self) -> &'static str {
        match self {
            Rule::D1 => "no wall-clock reads outside telemetry-gated sites",
            Rule::D2 => "no OS randomness; only explicitly seeded generators",
            Rule::D3 => "no default-hasher maps/sets in replay-critical crates",
            Rule::D4 => "no float ==/!= or partial_cmp().unwrap(); use total_cmp or epsilons",
            Rule::P1 => "no panic paths (unwrap/expect/panic!/indexing) in shard-worker code",
            Rule::P2 => "no blocking I/O (std::fs, println!, stdin) in shard-worker code",
            Rule::C1 => "no bare `as` casts in codec/record code; use checked helpers",
            Rule::C2 => "no `_ =>` wildcard arms in encode/decode matches",
            Rule::W1 => "journal append must precede ack/execute in source order",
            Rule::UnusedWaiver => "allow-pragmas must still waive something; prune stale ones",
            Rule::Pragma => "allow-pragmas must name a known rule and give a reason",
        }
    }
}

/// Parse a `--rules`-style comma list into a rule set. Unknown ids are
/// a structured error naming every valid id, so a typo fails the run
/// up front instead of silently scanning nothing.
pub fn parse_rule_list(list: &str) -> Result<BTreeSet<Rule>, String> {
    let mut rules = BTreeSet::new();
    for part in list.split(',') {
        let id = part.trim();
        if id.is_empty() {
            continue;
        }
        match Rule::from_filter_id(id) {
            Some(rule) => {
                rules.insert(rule);
            }
            None => {
                let known: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
                return Err(format!(
                    "unknown lint rule {id:?}; known rules: {}",
                    known.join(", ")
                ));
            }
        }
    }
    if rules.is_empty() {
        return Err("rule list names no rules".to_string());
    }
    Ok(rules)
}

/// Where each rule applies. Paths are workspace-relative with forward
/// slashes; a rule fires in a file iff some include prefix matches and
/// no exclude prefix does.
#[derive(Debug, Clone)]
pub struct Scope {
    pub rule: Rule,
    pub include: Vec<String>,
    pub exclude: Vec<String>,
    /// Whether the rule also applies inside test code (`tests/` files
    /// and items gated behind a `#[cfg(test)]` attribute).
    pub applies_to_tests: bool,
}

impl Scope {
    fn matches(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p.as_str()))
            && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The rule set to run; [`LintConfig::workspace_default`] is the one CI
/// enforces.
#[derive(Debug, Clone)]
pub struct LintConfig {
    pub scopes: Vec<Scope>,
    /// Report malformed pragmas (rule `pragma`).
    pub check_pragmas: bool,
    /// Report stale pragmas (rule `unused-waiver`).
    pub check_unused_waivers: bool,
}

/// The crates whose state feeds bit-exact replay/recovery proofs;
/// D3's ordered-iteration and D4's total-float-order requirements are
/// scoped to these.
const REPLAY_CRITICAL: [&str; 8] = [
    "crates/simulator/",
    "crates/service/",
    "crates/durability/",
    "crates/storage/",
    "crates/partitions/",
    "crates/scenario/",
    "crates/migrate/",
    "crates/overload/",
];

impl LintConfig {
    /// The workspace rule set: D1/D2 everywhere (tests included — a
    /// replay test that reads a clock is as nondeterministic as the
    /// code under test), D3/D4 in replay-critical crates, P1/P2 in the
    /// shard worker (a panic there is a silent shard death; blocking
    /// I/O there stalls every VM on the shard), C1/C2 in the durability
    /// wire codec, W1 in the service crate (ack before journal means a
    /// crash acks work the recovery cannot see). The bench crate is
    /// wall-clock by nature and exempt from D1.
    pub fn workspace_default() -> Self {
        LintConfig {
            scopes: vec![
                Scope {
                    rule: Rule::D1,
                    include: vec!["crates/".into(), "src/".into(), "tests/".into()],
                    exclude: vec!["crates/bench/".into()],
                    applies_to_tests: true,
                },
                Scope {
                    rule: Rule::D2,
                    include: vec!["crates/".into(), "src/".into(), "tests/".into()],
                    exclude: vec![],
                    applies_to_tests: true,
                },
                Scope {
                    rule: Rule::D3,
                    include: REPLAY_CRITICAL.iter().map(|s| s.to_string()).collect(),
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::D4,
                    include: REPLAY_CRITICAL.iter().map(|s| s.to_string()).collect(),
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::P1,
                    include: vec!["crates/service/src/shard.rs".into()],
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::P2,
                    include: vec!["crates/service/src/shard.rs".into()],
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::C1,
                    include: vec![
                        "crates/durability/src/codec.rs".into(),
                        "crates/durability/src/record.rs".into(),
                    ],
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::C2,
                    include: vec!["crates/durability/".into(), "crates/storage/".into()],
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::W1,
                    include: vec!["crates/service/src/".into()],
                    exclude: vec![],
                    applies_to_tests: false,
                },
            ],
            check_pragmas: true,
            check_unused_waivers: true,
        }
    }

    /// The same config restricted to `enabled` rules (the `--rules`
    /// filter). The meta rules only run when explicitly kept: a
    /// filtered run must not report a D1 pragma as stale just because
    /// D1 was filtered out of the run.
    pub fn restricted(&self, enabled: &BTreeSet<Rule>) -> LintConfig {
        LintConfig {
            scopes: self
                .scopes
                .iter()
                .filter(|s| enabled.contains(&s.rule))
                .cloned()
                .collect(),
            check_pragmas: self.check_pragmas && enabled.contains(&Rule::Pragma),
            check_unused_waivers: self.check_unused_waivers
                && enabled.contains(&Rule::UnusedWaiver),
        }
    }
}

/// One rule hit at a source location. The derived ordering
/// (path, line, rule, snippet, waived) is total, so a report sorted by
/// it has identical bytes however the per-file scans were scheduled.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: Rule,
    /// The offending token sequence, e.g. `Instant::now`.
    pub snippet: String,
    /// `Some(reason)` when waived by a pragma.
    pub waived: Option<String>,
}

/// A parsed allow-pragma comment (tag + rule + mandatory reason).
#[derive(Debug)]
struct Pragma {
    rule: Rule,
    reason: String,
    line: u32,
}

const PRAGMA_TAG: &str = "eavm-lint:";

/// Is this comment a doc comment? Pragma examples inside documentation
/// must be inert.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/**/"))
        || text.starts_with("/*!")
}

/// Parse an allow-pragma out of a comment body. Returns `Err(finding)`
/// for a comment that names the tag but is malformed (unknown rule or
/// missing reason) — those must fail loudly, not silently stop waiving.
fn parse_pragma(text: &str, line: u32, path: &str) -> Option<Result<Pragma, Finding>> {
    let at = text.find(PRAGMA_TAG)?;
    let rest = text[at + PRAGMA_TAG.len()..].trim_start();
    let malformed = |why: &str| {
        Some(Err(Finding {
            path: path.to_string(),
            line,
            rule: Rule::Pragma,
            snippet: why.to_string(),
            waived: None,
        }))
    };
    let Some(body) = rest.strip_prefix("allow(") else {
        return malformed("pragma is not `allow(<rule>, reason = \"...\")`");
    };
    // Close at the LAST `)` so a reason may itself contain parens.
    let Some(end) = body.rfind(')') else {
        return malformed("unterminated allow-pragma");
    };
    let body = &body[..end];
    let mut parts = body.splitn(2, ',');
    let rule_id = parts.next().unwrap_or("").trim();
    let Some(rule) = Rule::from_id(rule_id) else {
        return malformed(&format!("unknown rule {rule_id:?} in allow-pragma"));
    };
    let reason = parts
        .next()
        .and_then(|kv| kv.split_once('='))
        .filter(|(key, _)| key.trim() == "reason")
        .map(|(_, v)| v.trim().trim_matches('"').to_string())
        .unwrap_or_default();
    if reason.is_empty() {
        return malformed(&format!("allow({rule_id}) has no reason — one is required"));
    }
    Some(Ok(Pragma { rule, reason, line }))
}

/// Scan one file's source against the config. `path` must be
/// workspace-relative with forward slashes (it drives rule scoping).
pub fn scan_source(path: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let in_tests_dir = path.split('/').any(|seg| seg == "tests");
    let toks = tokenize(src);

    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for t in &toks {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            && !is_doc_comment(&t.text)
        {
            match parse_pragma(&t.text, t.line, path) {
                Some(Ok(p)) => pragmas.push(p),
                Some(Err(f)) if config.check_pragmas => findings.push(f),
                _ => {}
            }
        }
    }

    // Code tokens only, each tagged with whether it sits in test code:
    // files under `tests/`, or the single item (fn, mod, impl, use, ...)
    // that a `#[cfg(test)]` attribute gates — the item extends to its
    // closing brace, or to a `;` for brace-less items.
    let significant: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let flags = test_flags(&significant, in_tests_dir);
    let code: Vec<(&Tok, bool)> = significant.iter().copied().zip(flags).collect();

    // Structural context, built once per file and shared by all rules.
    let tree = parser::parse(&significant);
    let floats = FloatIndex::build(&significant);

    for scope in &config.scopes {
        if !scope.matches(path) {
            continue;
        }
        match scope.rule {
            Rule::C2 => c2_scan(path, &tree, &code, scope, &mut findings),
            Rule::W1 => w1_scan(path, &tree, &code, scope, &mut findings),
            _ => {
                for (i, &(tok, in_test)) in code.iter().enumerate() {
                    if in_test && !scope.applies_to_tests {
                        continue;
                    }
                    if let Some(snippet) = match_rule(scope.rule, &code, i, tok, &floats) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: tok.line,
                            rule: scope.rule,
                            snippet,
                            waived: None,
                        });
                    }
                }
            }
        }
    }

    // Apply waivers: a pragma covers its own line and the next line.
    // Track which pragmas earned their keep.
    let mut used = vec![false; pragmas.len()];
    for f in &mut findings {
        if matches!(f.rule, Rule::Pragma | Rule::UnusedWaiver) {
            continue;
        }
        if let Some(k) = pragmas
            .iter()
            .position(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
        {
            f.waived = Some(pragmas[k].reason.clone());
            used[k] = true;
        }
    }

    // A pragma that waived nothing is itself a finding — but only when
    // its rule actually ran on this file, so a `--rules`-filtered scan
    // never calls a waiver stale for lack of looking.
    if config.check_unused_waivers {
        for (k, p) in pragmas.iter().enumerate() {
            if used[k] {
                continue;
            }
            if !config
                .scopes
                .iter()
                .any(|s| s.rule == p.rule && s.matches(path))
            {
                continue;
            }
            findings.push(Finding {
                path: path.to_string(),
                line: p.line,
                rule: Rule::UnusedWaiver,
                snippet: format!("allow({}) waives nothing here — remove it", p.rule.id()),
                waived: None,
            });
        }
    }

    findings.sort();
    findings
}

/// Per-token test-code flags. A `#[cfg(test)]` attribute marks itself,
/// any attributes stacked after it, and the one item it gates — up to
/// the matching `}` of the item's first `{`, or a top-level `;` for
/// brace-less items (`use`, `mod tests;`). A mid-file test-only helper
/// therefore does NOT exempt the unrelated code below it.
fn test_flags(significant: &[&Tok], in_tests_dir: bool) -> Vec<bool> {
    let mut flags = vec![in_tests_dir; significant.len()];
    if in_tests_dir {
        return flags;
    }
    let punct = |j: usize| match significant.get(j) {
        Some(t) => match t.kind {
            TokKind::Punct(c) => Some(c),
            _ => None,
        },
        None => None,
    };
    let mut i = 0;
    while i < significant.len() {
        if !is_cfg_test_at(significant, i) {
            i += 1;
            continue;
        }
        // Walk to the end of the gated item: count `{`/`}` depth,
        // stopping at the brace that closes the first one opened, or at
        // a `;` before any brace opens. Brackets inside the attribute
        // itself contain neither, so no special casing is needed.
        let mut depth = 0usize;
        let mut end = significant.len() - 1;
        for (j, _) in significant.iter().enumerate().skip(i) {
            match punct(j) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                Some(';') if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        for flag in flags.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// Does `significant[i]` start a `#[cfg(test)]` attribute?
fn is_cfg_test_at(significant: &[&Tok], i: usize) -> bool {
    let texts: Vec<&str> = significant[i..]
        .iter()
        .take(7)
        .map(|t| t.text.as_str())
        .collect();
    matches!(
        texts.as_slice(),
        ["#", "[", "cfg", "(", "test", ")", "]"] | ["#", "[", "cfg", "(", "test", ",", _]
    )
}

fn ident_at<'a>(code: &'a [(&'a Tok, bool)], i: usize) -> Option<&'a str> {
    code.get(i)
        .and_then(|(t, _)| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

fn punct_at(code: &[(&Tok, bool)], i: usize) -> Option<char> {
    code.get(i).and_then(|(t, _)| match t.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    })
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Match a token rule at position `i` of the code-token stream; returns
/// the offending snippet on a hit.
fn match_rule(
    rule: Rule,
    code: &[(&Tok, bool)],
    i: usize,
    tok: &Tok,
    floats: &FloatIndex,
) -> Option<String> {
    match rule {
        Rule::D1 => {
            // `Instant::now` / `SystemTime::now` as adjacent tokens.
            if tok.kind == TokKind::Ident && (tok.text == "Instant" || tok.text == "SystemTime") {
                let path_sep =
                    punct_at(code, i + 1) == Some(':') && punct_at(code, i + 2) == Some(':');
                if path_sep && ident_at(code, i + 3) == Some("now") {
                    return Some(format!("{}::now", tok.text));
                }
            }
            None
        }
        Rule::D2 => {
            const BANNED: [&str; 5] = [
                "thread_rng",
                "from_entropy",
                "OsRng",
                "getrandom",
                "RandomState",
            ];
            (tok.kind == TokKind::Ident && BANNED.contains(&tok.text.as_str()))
                .then(|| tok.text.clone())
        }
        Rule::D3 => (tok.kind == TokKind::Ident
            && (tok.text == "HashMap" || tok.text == "HashSet"))
            .then(|| tok.text.clone()),
        Rule::D4 => d4_match(code, i, tok, floats),
        Rule::P1 => p1_match(code, i, tok),
        Rule::P2 => p2_match(code, i, tok),
        Rule::C1 => {
            if tok.kind == TokKind::Ident && tok.text == "as" {
                if let Some(ty) = ident_at(code, i + 1) {
                    if NUMERIC_TYPES.contains(&ty) {
                        return Some(format!("as {ty}"));
                    }
                }
            }
            None
        }
        // Structural and meta rules are produced elsewhere.
        Rule::C2 | Rule::W1 | Rule::UnusedWaiver | Rule::Pragma => None,
    }
}

/// Is this token a float-typed operand as far as the file-local index
/// can tell: a float literal, a name declared `: f64`/`: f32`, or the
/// type itself (the `f64` of `x as f64 == y`)?
fn is_float_operand(code: &[(&Tok, bool)], i: usize, floats: &FloatIndex) -> bool {
    let Some(&(t, _)) = code.get(i) else {
        return false;
    };
    match t.kind {
        TokKind::Number => is_float_literal(t),
        TokKind::Ident => t.text == "f64" || t.text == "f32" || floats.contains(&t.text),
        _ => false,
    }
}

/// D4: float `==`/`!=`, and `partial_cmp(..)` chained straight into
/// `.unwrap()`/`.expect()` (a NaN anywhere turns that into a panic and
/// any ordering it fed into nondeterminism — `total_cmp` is free).
fn d4_match(code: &[(&Tok, bool)], i: usize, tok: &Tok, floats: &FloatIndex) -> Option<String> {
    match tok.kind {
        TokKind::Punct('=') if punct_at(code, i + 1) == Some('=') => {
            // Anchor on the first `=` of `==`; a preceding comparison or
            // bang char means this is the tail of another operator.
            if matches!(
                punct_at(code, i.wrapping_sub(1)),
                Some('=') | Some('!') | Some('<') | Some('>')
            ) {
                return None;
            }
            let float = is_float_operand(code, i.checked_sub(1)?, floats)
                || is_float_operand(code, i + 2, floats);
            float.then(|| "float ==".to_string())
        }
        TokKind::Punct('!') if punct_at(code, i + 1) == Some('=') => {
            let float = is_float_operand(code, i.wrapping_sub(1), floats)
                || is_float_operand(code, i + 2, floats);
            float.then(|| "float !=".to_string())
        }
        TokKind::Ident if tok.text == "partial_cmp" && punct_at(code, i + 1) == Some('(') => {
            // Skip the balanced argument list, then look for `.unwrap(`
            // or `.expect(` immediately after it.
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < code.len() {
                match punct_at(code, j) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if punct_at(code, j + 1) == Some('.') {
                if let Some(m @ ("unwrap" | "expect")) = ident_at(code, j + 2) {
                    if punct_at(code, j + 3) == Some('(') {
                        return Some(format!("partial_cmp(..).{m}()"));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

fn p1_match(code: &[(&Tok, bool)], i: usize, tok: &Tok) -> Option<String> {
    match tok.kind {
        TokKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
            // Only as a method call: `.unwrap(` / `.expect(` — never
            // `unwrap_or*` (distinct idents) or free definitions.
            let is_call = punct_at(code, i.checked_sub(1)?) == Some('.')
                && punct_at(code, i + 1) == Some('(');
            is_call.then(|| format!(".{}()", tok.text))
        }
        TokKind::Ident if tok.text == "panic" || tok.text == "unreachable" => {
            (punct_at(code, i + 1) == Some('!')).then(|| format!("{}!", tok.text))
        }
        TokKind::Punct('[') => {
            // Indexing: `[` directly after an ident, `)`, `]`, or a
            // literal is `expr[...]`. Attribute (`#[`), macro (`vec![`),
            // slice types (`&[T]`), and array types (`: [T; N]`) all
            // have a different preceding token.
            let i = i.checked_sub(1)?;
            let (prev, _) = code.get(i)?;
            let indexing = matches!(prev.kind, TokKind::Ident | TokKind::Number)
                && !is_keyword(&prev.text)
                || matches!(prev.kind, TokKind::Punct(')') | TokKind::Punct(']'));
            indexing.then(|| format!("{}[..]", prev.text))
        }
        _ => None,
    }
}

/// P2: blocking I/O in a worker hot path — filesystem calls, console
/// macros (the write is synchronous and takes a process-global lock),
/// and stdin reads.
fn p2_match(code: &[(&Tok, bool)], i: usize, tok: &Tok) -> Option<String> {
    if tok.kind != TokKind::Ident {
        return None;
    }
    match tok.text.as_str() {
        "println" | "eprintln" | "print" | "eprint" => {
            (punct_at(code, i + 1) == Some('!')).then(|| format!("{}!", tok.text))
        }
        "std" => {
            let path_sep = punct_at(code, i + 1) == Some(':') && punct_at(code, i + 2) == Some(':');
            (path_sep && ident_at(code, i + 3) == Some("fs")).then(|| "std::fs".to_string())
        }
        "stdin" => Some("stdin".to_string()),
        _ => None,
    }
}

/// C2: walk every `match` whose nearest enclosing `fn` is a codec
/// (`encode*`/`decode*`) and flag `_ =>` arms at arm level. Arms of a
/// *nested* match sit inside that match's own braces and are charged to
/// the inner match, never the outer one.
fn c2_scan(
    path: &str,
    tree: &[parser::Node],
    code: &[(&Tok, bool)],
    scope: &Scope,
    findings: &mut Vec<Finding>,
) {
    parser::walk(tree, &mut |node, stack| {
        if node.kind != NodeKind::Match {
            return;
        }
        let codec_fn = stack.iter().rev().find_map(|n| match &n.kind {
            NodeKind::Fn(name) => Some(name.as_str()),
            _ => None,
        });
        let Some(fn_name) = codec_fn else { return };
        if !(fn_name.starts_with("encode") || fn_name.starts_with("decode")) {
            return;
        }
        let mut depth = 0usize;
        for j in node.body.clone() {
            let Some(&(t, in_test)) = code.get(j) else {
                break;
            };
            match t.kind {
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                    depth = depth.saturating_sub(1)
                }
                TokKind::Ident
                    if depth == 0
                        && t.text == "_"
                        && punct_at(code, j + 1) == Some('=')
                        && punct_at(code, j + 2) == Some('>') =>
                {
                    if in_test && !scope.applies_to_tests {
                        continue;
                    }
                    findings.push(Finding {
                        path: path.to_string(),
                        line: t.line,
                        rule: Rule::C2,
                        snippet: format!("`_ =>` in {fn_name}"),
                        waived: None,
                    });
                }
                _ => {}
            }
        }
    });
}

/// W1 journal sites: a call to the journaling layer.
fn w1_journal_site(code: &[(&Tok, bool)], j: usize) -> bool {
    match ident_at(code, j) {
        Some("journal_append") | Some("append_resilient") => {
            // A call, not the `fn journal_append(` definition.
            punct_at(code, j + 1) == Some('(') && ident_at(code, j.wrapping_sub(1)) != Some("fn")
        }
        _ => false,
    }
}

/// W1 ack sites: delivering a verdict to the caller or executing a
/// planned migration. Both must be preceded (in source order, within
/// the same fn body) by a journal append, or a crash between ack and
/// append acknowledges work recovery cannot see.
fn w1_ack_site(code: &[(&Tok, bool)], j: usize) -> Option<&'static str> {
    match ident_at(code, j) {
        Some("verdict_tx")
            if punct_at(code, j + 1) == Some('.')
                && ident_at(code, j + 2) == Some("send")
                && punct_at(code, j + 3) == Some('(') =>
        {
            Some("verdict_tx.send")
        }
        Some("execute_move")
            if punct_at(code, j + 1) == Some('(')
                && punct_at(code, j.wrapping_sub(1)) == Some('.') =>
        {
            Some(".execute_move(..)")
        }
        _ => None,
    }
}

/// W1: within each `fn` body, the first journal site must precede every
/// ack site in source order.
fn w1_scan(
    path: &str,
    tree: &[parser::Node],
    code: &[(&Tok, bool)],
    scope: &Scope,
    findings: &mut Vec<Finding>,
) {
    parser::walk(tree, &mut |node, _stack| {
        if !matches!(node.kind, NodeKind::Fn(_)) {
            return;
        }
        let first_journal = node.body.clone().find(|&j| w1_journal_site(code, j));
        for j in node.body.clone() {
            let Some(site) = w1_ack_site(code, j) else {
                continue;
            };
            let Some(&(t, in_test)) = code.get(j) else {
                continue;
            };
            if in_test && !scope.applies_to_tests {
                continue;
            }
            if first_journal.is_none_or(|fj| fj > j) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: t.line,
                    rule: Rule::W1,
                    snippet: format!("{site} before any journal append"),
                    waived: None,
                });
            }
        }
    });
}

/// Keywords that can directly precede `[` without it being indexing
/// (`let [a, b] = ..` destructuring, `return [..]`, `for _ in [..]`).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let"
            | "as"
            | "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "const"
            | "static"
    )
}
