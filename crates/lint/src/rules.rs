//! The invariant rules and the per-file scanner.
//!
//! Each rule is a pattern over a few adjacent non-comment tokens plus a
//! path scope. Violations are waivable only by an inline pragma
//!
//! ```text
//! // eavm-lint: allow(D1, reason = "telemetry-gated; never on replay path")
//! ```
//!
//! on the same line as the violation or on the line immediately above
//! it. A pragma without a `reason` never waives — it is itself reported
//! as a malformed-pragma violation, so justification is mandatory.

use crate::lexer::{tokenize, Tok, TokKind};

/// Stable rule identifiers (these appear in pragmas and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No wall-clock reads (`Instant::now` / `SystemTime::now`).
    D1,
    /// No OS randomness (`thread_rng`, `from_entropy`, `OsRng`, ...).
    D2,
    /// No default-hasher `HashMap`/`HashSet` in replay-critical crates.
    D3,
    /// No `unwrap`/`expect`/`panic!`/slice-indexing in worker hot paths.
    P1,
    /// No bare `as` narrowing casts in durability codec/record code.
    C1,
    /// A pragma that cannot waive anything (unknown rule or no reason).
    Pragma,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::P1 => "P1",
            Rule::C1 => "C1",
            Rule::Pragma => "pragma",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        match id {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "P1" => Some(Rule::P1),
            "C1" => Some(Rule::C1),
            _ => None,
        }
    }

    /// One-line statement of the invariant, for reports.
    pub fn invariant(self) -> &'static str {
        match self {
            Rule::D1 => "no wall-clock reads outside telemetry-gated sites",
            Rule::D2 => "no OS randomness; only explicitly seeded generators",
            Rule::D3 => "no default-hasher maps/sets in replay-critical crates",
            Rule::P1 => "no panic paths (unwrap/expect/panic!/indexing) in shard-worker code",
            Rule::C1 => "no bare `as` casts in codec/record code; use checked helpers",
            Rule::Pragma => "allow-pragmas must name a known rule and give a reason",
        }
    }
}

/// Where each rule applies. Paths are workspace-relative with forward
/// slashes; a rule fires in a file iff some include prefix matches and
/// no exclude prefix does.
#[derive(Debug, Clone)]
pub struct Scope {
    pub rule: Rule,
    pub include: Vec<String>,
    pub exclude: Vec<String>,
    /// Whether the rule also applies inside test code (`tests/` files
    /// and items gated behind a `#[cfg(test)]` attribute).
    pub applies_to_tests: bool,
}

impl Scope {
    fn matches(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p.as_str()))
            && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The rule set to run; [`LintConfig::workspace_default`] is the one CI
/// enforces.
#[derive(Debug, Clone)]
pub struct LintConfig {
    pub scopes: Vec<Scope>,
}

/// The crates whose state feeds bit-exact replay/recovery proofs; D3's
/// ordered-iteration requirement is scoped to these.
const REPLAY_CRITICAL: [&str; 8] = [
    "crates/simulator/",
    "crates/service/",
    "crates/durability/",
    "crates/storage/",
    "crates/partitions/",
    "crates/scenario/",
    "crates/migrate/",
    "crates/overload/",
];

impl LintConfig {
    /// The workspace rule set: D1/D2 everywhere (tests included — a
    /// replay test that reads a clock is as nondeterministic as the
    /// code under test), D3 in replay-critical crates, P1 in the shard
    /// worker (a panic there is a silent shard death the supervisor
    /// must mop up), C1 in the durability wire codec. The bench crate
    /// is wall-clock by nature and exempt from D1.
    pub fn workspace_default() -> Self {
        LintConfig {
            scopes: vec![
                Scope {
                    rule: Rule::D1,
                    include: vec!["crates/".into(), "src/".into(), "tests/".into()],
                    exclude: vec!["crates/bench/".into()],
                    applies_to_tests: true,
                },
                Scope {
                    rule: Rule::D2,
                    include: vec!["crates/".into(), "src/".into(), "tests/".into()],
                    exclude: vec![],
                    applies_to_tests: true,
                },
                Scope {
                    rule: Rule::D3,
                    include: REPLAY_CRITICAL.iter().map(|s| s.to_string()).collect(),
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::P1,
                    include: vec!["crates/service/src/shard.rs".into()],
                    exclude: vec![],
                    applies_to_tests: false,
                },
                Scope {
                    rule: Rule::C1,
                    include: vec![
                        "crates/durability/src/codec.rs".into(),
                        "crates/durability/src/record.rs".into(),
                    ],
                    exclude: vec![],
                    applies_to_tests: false,
                },
            ],
        }
    }
}

/// One rule hit at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: Rule,
    /// The offending token sequence, e.g. `Instant::now`.
    pub snippet: String,
    /// `Some(reason)` when waived by a pragma.
    pub waived: Option<String>,
}

/// A parsed allow-pragma comment (tag + rule + mandatory reason).
#[derive(Debug)]
struct Pragma {
    rule: Rule,
    reason: String,
    line: u32,
}

const PRAGMA_TAG: &str = "eavm-lint:";

/// Parse an allow-pragma out of a comment body. Returns `Err(finding)`
/// for a comment that names the tag but is malformed (unknown rule or
/// missing reason) — those must fail loudly, not silently stop waiving.
fn parse_pragma(text: &str, line: u32, path: &str) -> Option<Result<Pragma, Finding>> {
    let at = text.find(PRAGMA_TAG)?;
    let rest = text[at + PRAGMA_TAG.len()..].trim_start();
    let malformed = |why: &str| {
        Some(Err(Finding {
            path: path.to_string(),
            line,
            rule: Rule::Pragma,
            snippet: why.to_string(),
            waived: None,
        }))
    };
    let Some(body) = rest.strip_prefix("allow(") else {
        return malformed("pragma is not `allow(<rule>, reason = \"...\")`");
    };
    // Close at the LAST `)` so a reason may itself contain parens.
    let Some(end) = body.rfind(')') else {
        return malformed("unterminated allow-pragma");
    };
    let body = &body[..end];
    let mut parts = body.splitn(2, ',');
    let rule_id = parts.next().unwrap_or("").trim();
    let Some(rule) = Rule::from_id(rule_id) else {
        return malformed(&format!("unknown rule {rule_id:?} in allow-pragma"));
    };
    let reason = parts
        .next()
        .and_then(|kv| kv.split_once('='))
        .filter(|(key, _)| key.trim() == "reason")
        .map(|(_, v)| v.trim().trim_matches('"').to_string())
        .unwrap_or_default();
    if reason.is_empty() {
        return malformed(&format!("allow({rule_id}) has no reason — one is required"));
    }
    Some(Ok(Pragma { rule, reason, line }))
}

/// Scan one file's source against the config. `path` must be
/// workspace-relative with forward slashes (it drives rule scoping).
pub fn scan_source(path: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let in_tests_dir = path.split('/').any(|seg| seg == "tests");
    let toks = tokenize(src);

    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for t in &toks {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            match parse_pragma(&t.text, t.line, path) {
                Some(Ok(p)) => pragmas.push(p),
                Some(Err(f)) => findings.push(f),
                None => {}
            }
        }
    }

    // Code tokens only, each tagged with whether it sits in test code:
    // files under `tests/`, or the single item (fn, mod, impl, use, ...)
    // that a `#[cfg(test)]` attribute gates — the item extends to its
    // closing brace, or to a `;` for brace-less items.
    let code: Vec<(&Tok, bool)> = {
        let significant: Vec<&Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let flags = test_flags(&significant, in_tests_dir);
        significant.into_iter().zip(flags).collect()
    };

    for scope in &config.scopes {
        if !scope.matches(path) {
            continue;
        }
        for (i, &(tok, in_test)) in code.iter().enumerate() {
            if in_test && !scope.applies_to_tests {
                continue;
            }
            if let Some(snippet) = match_rule(scope.rule, &code, i, tok) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: tok.line,
                    rule: scope.rule,
                    snippet,
                    waived: None,
                });
            }
        }
    }

    // Apply waivers: a pragma covers its own line and the next line.
    for f in &mut findings {
        if f.rule == Rule::Pragma {
            continue;
        }
        if let Some(p) = pragmas
            .iter()
            .find(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
        {
            f.waived = Some(p.reason.clone());
        }
    }

    findings.sort();
    findings
}

/// Per-token test-code flags. A `#[cfg(test)]` attribute marks itself,
/// any attributes stacked after it, and the one item it gates — up to
/// the matching `}` of the item's first `{`, or a top-level `;` for
/// brace-less items (`use`, `mod tests;`). A mid-file test-only helper
/// therefore does NOT exempt the unrelated code below it.
fn test_flags(significant: &[&Tok], in_tests_dir: bool) -> Vec<bool> {
    let mut flags = vec![in_tests_dir; significant.len()];
    if in_tests_dir {
        return flags;
    }
    let punct = |j: usize| match significant.get(j) {
        Some(t) => match t.kind {
            TokKind::Punct(c) => Some(c),
            _ => None,
        },
        None => None,
    };
    let mut i = 0;
    while i < significant.len() {
        if !is_cfg_test_at(significant, i) {
            i += 1;
            continue;
        }
        // Walk to the end of the gated item: count `{`/`}` depth,
        // stopping at the brace that closes the first one opened, or at
        // a `;` before any brace opens. Brackets inside the attribute
        // itself contain neither, so no special casing is needed.
        let mut depth = 0usize;
        let mut end = significant.len() - 1;
        for (j, _) in significant.iter().enumerate().skip(i) {
            match punct(j) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                Some(';') if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        for flag in flags.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// Does `significant[i]` start a `#[cfg(test)]` attribute?
fn is_cfg_test_at(significant: &[&Tok], i: usize) -> bool {
    let texts: Vec<&str> = significant[i..]
        .iter()
        .take(7)
        .map(|t| t.text.as_str())
        .collect();
    matches!(
        texts.as_slice(),
        ["#", "[", "cfg", "(", "test", ")", "]"] | ["#", "[", "cfg", "(", "test", ",", _]
    )
}

fn ident_at<'a>(code: &'a [(&'a Tok, bool)], i: usize) -> Option<&'a str> {
    code.get(i)
        .and_then(|(t, _)| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

fn punct_at(code: &[(&Tok, bool)], i: usize) -> Option<char> {
    code.get(i).and_then(|(t, _)| match t.kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    })
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Match `rule` at position `i` of the code-token stream; returns the
/// offending snippet on a hit.
fn match_rule(rule: Rule, code: &[(&Tok, bool)], i: usize, tok: &Tok) -> Option<String> {
    match rule {
        Rule::D1 => {
            // `Instant::now` / `SystemTime::now` as adjacent tokens.
            if tok.kind == TokKind::Ident && (tok.text == "Instant" || tok.text == "SystemTime") {
                let path_sep =
                    punct_at(code, i + 1) == Some(':') && punct_at(code, i + 2) == Some(':');
                if path_sep && ident_at(code, i + 3) == Some("now") {
                    return Some(format!("{}::now", tok.text));
                }
            }
            None
        }
        Rule::D2 => {
            const BANNED: [&str; 5] = [
                "thread_rng",
                "from_entropy",
                "OsRng",
                "getrandom",
                "RandomState",
            ];
            (tok.kind == TokKind::Ident && BANNED.contains(&tok.text.as_str()))
                .then(|| tok.text.clone())
        }
        Rule::D3 => (tok.kind == TokKind::Ident
            && (tok.text == "HashMap" || tok.text == "HashSet"))
            .then(|| tok.text.clone()),
        Rule::P1 => p1_match(code, i, tok),
        Rule::C1 => {
            if tok.kind == TokKind::Ident && tok.text == "as" {
                if let Some(ty) = ident_at(code, i + 1) {
                    if NUMERIC_TYPES.contains(&ty) {
                        return Some(format!("as {ty}"));
                    }
                }
            }
            None
        }
        Rule::Pragma => None, // produced by the pragma parser, not matching
    }
}

fn p1_match(code: &[(&Tok, bool)], i: usize, tok: &Tok) -> Option<String> {
    match tok.kind {
        TokKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
            // Only as a method call: `.unwrap(` / `.expect(` — never
            // `unwrap_or*` (distinct idents) or free definitions.
            let is_call = punct_at(code, i.checked_sub(1)?) == Some('.')
                && punct_at(code, i + 1) == Some('(');
            is_call.then(|| format!(".{}()", tok.text))
        }
        TokKind::Ident if tok.text == "panic" || tok.text == "unreachable" => {
            (punct_at(code, i + 1) == Some('!')).then(|| format!("{}!", tok.text))
        }
        TokKind::Punct('[') => {
            // Indexing: `[` directly after an ident, `)`, `]`, or a
            // literal is `expr[...]`. Attribute (`#[`), macro (`vec![`),
            // slice types (`&[T]`), and array types (`: [T; N]`) all
            // have a different preceding token.
            let i = i.checked_sub(1)?;
            let (prev, _) = code.get(i)?;
            let indexing = matches!(prev.kind, TokKind::Ident | TokKind::Number)
                && !is_keyword(&prev.text)
                || matches!(prev.kind, TokKind::Punct(')') | TokKind::Punct(']'));
            indexing.then(|| format!("{}[..]", prev.text))
        }
        _ => None,
    }
}

/// Keywords that can directly precede `[` without it being indexing
/// (`let [a, b] = ..` destructuring, `return [..]`, `for _ in [..]`).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let"
            | "as"
            | "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "const"
            | "static"
    )
}
