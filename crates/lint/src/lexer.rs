//! A minimal Rust lexer — just enough token structure for the invariant
//! rules: comments (kept, because allow-pragmas live in them), string
//! and raw-string literals (skipped by rules, so a fixture embedded in
//! a test string never fires), identifiers, numbers, and single-char
//! punctuation. No parse tree: every rule is a pattern over a few
//! adjacent tokens, which is exactly the granularity source-level
//! invariants like "no `Instant::now`" need.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`Instant`, `as`, `unwrap`, ...).
    Ident,
    /// One punctuation character (`:`, `[`, `!`, `#`, ...).
    Punct(char),
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// `// ...` line comment (text includes the slashes).
    LineComment,
    /// `/* ... */` block comment, nesting handled.
    BlockComment,
    /// `'a` lifetime marker.
    Lifetime,
}

/// One token with its 1-indexed source line and byte span. `start` and
/// `end` are byte offsets into the source (`start <= end <= src.len()`,
/// both on char boundaries), so downstream passes can slice the
/// original text without re-lexing.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub start: usize,
    pub end: usize,
}

/// Tokenize `src`. Never fails: unterminated constructs are closed at
/// end of input, because a linter must degrade gracefully on the code
/// it is pointed at.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        byte: 0,
        start: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    /// Byte offset of `pos` in the original source.
    byte: usize,
    /// Byte offset where the token being lexed began.
    start: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        self.byte += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        let (start, end) = (self.start, self.byte);
        self.out.push(Tok {
            kind,
            text,
            line,
            start,
            end,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            self.start = self.byte;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                _ if c.is_alphabetic() || c == '_' => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// Plain `"..."` string with escapes.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    /// Handle `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`. Returns
    /// `false` (consuming nothing) when the `r`/`b` starts an ordinary
    /// identifier instead.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the leading r or b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false;
        }
        // Escapes are inert only in true raw strings; a plain b"..."
        // byte string processes them like an ordinary string literal.
        let raw = self.peek(0) == Some('r') || self.peek(1) == Some('r') || hashes > 0;
        for _ in 0..=ahead {
            self.bump(); // prefix, hashes, and the opening quote
        }
        loop {
            match self.bump() {
                None => break,
                Some('\\') if !raw => {
                    self.bump();
                }
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Literal, String::new(), line);
        true
    }

    /// `'a'` char literal vs `'a` lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while self.peek(0).is_some() && self.peek(0) != Some('\'') {
                    self.bump();
                }
                self.bump();
                self.push(TokKind::Literal, String::new(), line);
            }
            Some(c) if (c.is_alphanumeric() || c == '_') && self.peek(1) != Some('\'') => {
                // Lifetime: consume the identifier.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, String::new(), line);
            }
            Some(_) => {
                self.bump(); // the char
                self.bump(); // closing quote
                self.push(TokKind::Literal, String::new(), line);
            }
            None => self.push(TokKind::Literal, String::new(), line),
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        // Rough but sufficient: digits plus alphanumerics, underscores,
        // and dots (covers 0xFF, 1_000, 1.5e-9). A trailing range `..`
        // must not be swallowed.
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '.' && self.peek(1) == Some('.') {
                break;
            }
            if c.is_alphanumeric() || c == '_' || c == '.' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Number, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = tokenize("let x = foo::bar(42);");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "foo", "bar"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::Number));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = tokenize(r#"let s = "Instant::now()";"#);
        assert!(!toks.iter().any(|t| t.text == "Instant"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = tokenize(r##"let s = r#"a "quoted" thread_rng"# ; next"##);
        assert!(!toks.iter().any(|t| t.text == "thread_rng"));
        assert!(toks.iter().any(|t| t.text == "next"));
    }

    #[test]
    fn comments_are_kept_with_text() {
        let toks = tokenize("x // eavm-lint: allow(D1, reason = \"y\")\nz");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .expect("comment token");
        assert!(c.text.contains("eavm-lint"));
        assert_eq!(c.line, 1);
        assert!(toks.iter().any(|t| t.text == "z" && t.line == 2));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        assert!(kinds("&'a str").contains(&TokKind::Lifetime));
        assert!(kinds("'x'").contains(&TokKind::Literal));
        assert!(kinds(r"'\n'").contains(&TokKind::Literal));
    }

    #[test]
    fn nested_block_comments() {
        let toks = tokenize("/* outer /* inner */ still */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "after");
    }

    #[test]
    fn lines_survive_multiline_tokens() {
        let toks = tokenize("a\n\"two\nline\"\nb");
        let b = toks.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn spans_are_in_bounds_ordered_and_sliceable() {
        let src = "let π = \"uni\\\"code\"; /* c */ foo::bar[0] // t\n'a' r#\"raw\"#";
        let toks = tokenize(src);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start <= t.end, "{t:?}");
            assert!(t.end <= src.len(), "{t:?}");
            assert!(t.start >= prev_end, "overlapping spans: {t:?}");
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prev_end = t.end;
        }
        // Ident spans slice back to their own text.
        let foo = toks.iter().find(|t| t.text == "foo").expect("foo");
        assert_eq!(&src[foo.start..foo.end], "foo");
    }
}
