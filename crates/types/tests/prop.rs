//! Property-based tests for the core vocabulary types.

use eavm_types::{Joules, MixVector, Seconds, Watts, WorkloadType};
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = MixVector> {
    (0u32..50, 0u32..50, 0u32..50).prop_map(|(c, m, i)| MixVector::new(c, m, i))
}

proptest! {
    #[test]
    fn mix_addition_is_commutative_and_associative(a in arb_mix(), b in arb_mix(), c in arb_mix()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + MixVector::EMPTY, a);
    }

    #[test]
    fn mix_add_then_sub_roundtrips(a in arb_mix(), b in arb_mix()) {
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!((a + b).checked_sub(&a), Some(b));
    }

    #[test]
    fn fits_within_iff_checked_sub_succeeds(a in arb_mix(), b in arb_mix()) {
        prop_assert_eq!(a.fits_within(&b), b.checked_sub(&a).is_some());
        prop_assert!(a.fits_within(&(a + b)));
    }

    #[test]
    fn plus_and_minus_are_inverses(a in arb_mix(), ty_idx in 0usize..3) {
        let ty = WorkloadType::from_index(ty_idx);
        let plus = a.plus(ty);
        prop_assert_eq!(plus.total(), a.total() + 1);
        prop_assert_eq!(plus.minus(ty), Some(a));
        if a[ty] == 0 {
            prop_assert_eq!(a.minus(ty), None);
        }
    }

    #[test]
    fn total_is_sum_of_components(a in arb_mix()) {
        let sum: u32 = a.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(a.total(), sum);
        prop_assert_eq!(a.is_empty(), sum == 0);
    }

    #[test]
    fn homogeneous_iff_sole_type_exists(a in arb_mix()) {
        prop_assert_eq!(a.is_homogeneous(), a.sole_type().is_some());
        if let Some(ty) = a.sole_type() {
            prop_assert_eq!(a[ty], a.total());
        }
    }

    #[test]
    fn space_is_sorted_unique_and_complete(c in 0u32..5, m in 0u32..4, i in 0u32..4) {
        let bounds = MixVector::new(c, m, i);
        let all: Vec<MixVector> = MixVector::space(bounds).collect();
        prop_assert_eq!(all.len(), ((c + 1) * (m + 1) * (i + 1)) as usize);
        for w in all.windows(2) {
            prop_assert!(w[0] < w[1], "space must be strictly ascending");
        }
        for mix in &all {
            prop_assert!(mix.fits_within(&bounds));
        }
    }

    #[test]
    fn unit_algebra_is_consistent(p in 1.0f64..1000.0, t in 0.1f64..1e6) {
        let e = Watts(p) * Seconds(t);
        prop_assert!((e.value() - p * t).abs() < 1e-6 * p * t);
        let back_p = e / Seconds(t);
        prop_assert!((back_p.value() - p).abs() < 1e-9 * p);
        let back_t = e / Watts(p);
        prop_assert!((back_t.value() - t).abs() < 1e-9 * t);
    }

    #[test]
    fn unit_sums_match_scalar_sums(values in proptest::collection::vec(0.0f64..1e6, 0..20)) {
        let total: Joules = values.iter().map(|&v| Joules(v)).sum();
        let scalar: f64 = values.iter().sum();
        prop_assert!((total.value() - scalar).abs() <= 1e-9 * scalar.max(1.0));
    }

    #[test]
    fn workload_parse_display_roundtrip(ty_idx in 0usize..3) {
        let ty = WorkloadType::from_index(ty_idx);
        let parsed: WorkloadType = ty.to_string().parse().unwrap();
        prop_assert_eq!(parsed, ty);
    }
}
