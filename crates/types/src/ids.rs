//! Entity identifiers.
//!
//! Every entity the system reasons about — virtual machines, physical
//! servers, and trace job requests — gets its own opaque integer id type so
//! that an index into the server table cannot be accidentally used to look
//! up a VM. The ids are plain `u32`s internally: datacenter-scale
//! simulations (10,000 VMs in the paper's trace) fit comfortably, and small
//! ids keep the hot simulator structs compact.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(v: u32) -> Self {
                Self(v)
            }

            /// The raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a single virtual machine.
    VmId,
    "vm"
);
id_type!(
    /// Identifier of a physical server in the simulated cloud.
    ServerId,
    "srv"
);
id_type!(
    /// Identifier of a job request in the (cleaned) workload trace.
    JobId,
    "job"
);

/// A monotonically increasing id allocator, used by the simulator and trace
/// adapters to mint fresh [`VmId`]s / [`JobId`]s.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// A fresh allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next id as a raw `u32`.
    pub fn next_raw(&mut self) -> u32 {
        let id = self.next;
        self.next = self
            .next
            .checked_add(1)
            .expect("id space exhausted (more than u32::MAX entities)");
        id
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(VmId::new(3).to_string(), "vm3");
        assert_eq!(ServerId::new(0).to_string(), "srv0");
        assert_eq!(JobId::new(42).to_string(), "job42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(VmId::new(1) < VmId::new(2));
        let set: HashSet<ServerId> = [ServerId::new(1), ServerId::new(1), ServerId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn conversions_roundtrip() {
        let v = VmId::from(7usize);
        assert_eq!(v.index(), 7);
        let s = ServerId::from(9u32);
        assert_eq!(s.0, 9);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        let a = alloc.next_raw();
        let b = alloc.next_raw();
        let c = alloc.next_raw();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(alloc.allocated(), 3);
    }
}
