//! Workspace-wide error type.
//!
//! The crates in this workspace are libraries; they surface recoverable
//! failures (malformed trace lines, database misses, infeasible allocation
//! requests) through [`EavmError`] rather than panicking, so downstream
//! binaries can decide how to react.

use std::fmt;
use std::io;

/// Errors produced across the `eavm` workspace.
#[derive(Debug)]
pub enum EavmError {
    /// Underlying I/O failure (reading/writing trace or database files).
    Io(io::Error),
    /// Malformed textual input (SWF line, CSV record, workload label...).
    Parse(String),
    /// A model-database lookup missed and no extrapolation was permitted.
    ModelMiss(String),
    /// An allocation request cannot be satisfied under the given
    /// constraints (e.g. a VM that fits on no server without violating QoS).
    Infeasible(String),
    /// Configuration that is internally inconsistent.
    InvalidConfig(String),
    /// A required subsystem (coordinator, shard worker) is down or
    /// unreachable; the operation cannot produce a trustworthy answer.
    Unavailable(String),
    /// A specific shard worker is down and could not be revived; the
    /// shard index makes supervision failures attributable in logs.
    ShardDown { shard: usize, detail: String },
    /// The write-ahead journal or a checkpoint snapshot is malformed
    /// (bad magic, checksum mismatch, undecodable record).
    Durability(String),
}

impl fmt::Display for EavmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EavmError::Io(e) => write!(f, "i/o error: {e}"),
            EavmError::Parse(msg) => write!(f, "parse error: {msg}"),
            EavmError::ModelMiss(msg) => write!(f, "model database miss: {msg}"),
            EavmError::Infeasible(msg) => write!(f, "infeasible allocation: {msg}"),
            EavmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EavmError::Unavailable(msg) => write!(f, "subsystem unavailable: {msg}"),
            EavmError::ShardDown { shard, detail } => {
                write!(f, "shard {shard} down: {detail}")
            }
            EavmError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for EavmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EavmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EavmError {
    fn from(e: io::Error) -> Self {
        EavmError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, EavmError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_variants() {
        assert!(EavmError::Parse("x".into()).to_string().contains("parse"));
        assert!(EavmError::ModelMiss("k".into())
            .to_string()
            .contains("miss"));
        assert!(EavmError::Infeasible("v".into())
            .to_string()
            .contains("infeasible"));
        assert!(EavmError::InvalidConfig("c".into())
            .to_string()
            .contains("configuration"));
        assert!(EavmError::Unavailable("shard 3".into())
            .to_string()
            .contains("unavailable"));
        let down = EavmError::ShardDown {
            shard: 3,
            detail: "worker died twice".into(),
        };
        assert_eq!(down.to_string(), "shard 3 down: worker died twice");
        assert!(EavmError::Durability("bad magic".into())
            .to_string()
            .contains("durability"));
    }

    #[test]
    fn io_error_has_source() {
        let e: EavmError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn parse_error_has_no_source() {
        assert!(EavmError::Parse("bad".into()).source().is_none());
    }
}
