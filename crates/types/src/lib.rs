//! # eavm-types
//!
//! Shared vocabulary types for the `eavm` workspace: strongly-typed physical
//! units ([`Seconds`], [`Joules`], [`Watts`]), entity identifiers ([`VmId`],
//! [`ServerId`], [`JobId`]), the three-way workload classification used
//! throughout the paper ([`WorkloadType`]), and the per-type VM-count vector
//! that keys the empirical model database ([`MixVector`]).
//!
//! Everything here is deliberately dependency-free so that every other crate
//! in the workspace can share it without pulling in simulation machinery.

#![forbid(unsafe_code)]

pub mod error;
pub mod ids;
pub mod mix;
pub mod units;
pub mod workload;

pub use error::EavmError;
pub use ids::{JobId, ServerId, VmId};
pub use mix::MixVector;
pub use units::{Joules, Seconds, Watts};
pub use workload::WorkloadType;
