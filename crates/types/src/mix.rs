//! The `(Ncpu, Nmem, Nio)` vector that keys the model database.
//!
//! Table II of the paper defines the database registers: each record is
//! keyed by the number of co-located VMs of each workload type. The paper
//! sorts records by this key and looks them up with binary search; we give
//! the key a proper type with total ordering matching that sort order.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub};

use crate::workload::WorkloadType;

/// Number of VMs of each workload type co-located on one server:
/// `(Ncpu, Nmem, Nio)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MixVector {
    /// VMs running a CPU-intensive benchmark (`Ncpu`).
    pub cpu: u32,
    /// VMs running a memory-intensive benchmark (`Nmem`).
    pub mem: u32,
    /// VMs running an I/O-intensive benchmark (`Nio`).
    pub io: u32,
}

impl MixVector {
    /// The empty allocation (no VMs).
    pub const EMPTY: MixVector = MixVector {
        cpu: 0,
        mem: 0,
        io: 0,
    };

    /// Construct from explicit per-type counts.
    #[inline]
    pub const fn new(cpu: u32, mem: u32, io: u32) -> Self {
        Self { cpu, mem, io }
    }

    /// A mix consisting of `n` VMs of a single type.
    #[inline]
    pub fn single(ty: WorkloadType, n: u32) -> Self {
        let mut m = Self::EMPTY;
        m[ty] = n;
        m
    }

    /// Total number of VMs in the mix (`Ncpu + Nmem + Nio`).
    #[inline]
    pub const fn total(&self) -> u32 {
        self.cpu + self.mem + self.io
    }

    /// `true` if no VMs are allocated.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// `true` if the mix contains VMs of exactly one workload type.
    pub fn is_homogeneous(&self) -> bool {
        let nonzero = [self.cpu, self.mem, self.io]
            .iter()
            .filter(|&&n| n > 0)
            .count();
        nonzero == 1
    }

    /// The single workload type present, if the mix is homogeneous.
    pub fn sole_type(&self) -> Option<WorkloadType> {
        if !self.is_homogeneous() {
            return None;
        }
        WorkloadType::ALL.into_iter().find(|ty| self[*ty] > 0)
    }

    /// Count for a given workload type.
    #[inline]
    pub fn count(&self, ty: WorkloadType) -> u32 {
        self[ty]
    }

    /// Add one VM of the given type, returning the new mix.
    #[inline]
    pub fn plus(mut self, ty: WorkloadType) -> Self {
        self[ty] += 1;
        self
    }

    /// Remove one VM of the given type, returning the new mix.
    /// Returns `None` if no VM of that type is present.
    pub fn minus(mut self, ty: WorkloadType) -> Option<Self> {
        if self[ty] == 0 {
            return None;
        }
        self[ty] -= 1;
        Some(self)
    }

    /// Component-wise `<=` (can `self` fit inside `bound`?).
    pub fn fits_within(&self, bound: &MixVector) -> bool {
        self.cpu <= bound.cpu && self.mem <= bound.mem && self.io <= bound.io
    }

    /// Checked component-wise subtraction.
    pub fn checked_sub(&self, rhs: &MixVector) -> Option<MixVector> {
        Some(MixVector {
            cpu: self.cpu.checked_sub(rhs.cpu)?,
            mem: self.mem.checked_sub(rhs.mem)?,
            io: self.io.checked_sub(rhs.io)?,
        })
    }

    /// Iterate over `(type, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (WorkloadType, u32)> + '_ {
        WorkloadType::ALL.into_iter().map(move |ty| (ty, self[ty]))
    }

    /// Iterate over every mix with `cpu <= bounds.cpu`, `mem <= bounds.mem`,
    /// `io <= bounds.io`, in ascending key order. This is the iteration
    /// space of the paper's combined benchmarking phase.
    pub fn space(bounds: MixVector) -> impl Iterator<Item = MixVector> {
        (0..=bounds.cpu).flat_map(move |cpu| {
            (0..=bounds.mem)
                .flat_map(move |mem| (0..=bounds.io).map(move |io| MixVector { cpu, mem, io }))
        })
    }
}

impl Index<WorkloadType> for MixVector {
    type Output = u32;
    #[inline]
    fn index(&self, ty: WorkloadType) -> &u32 {
        match ty {
            WorkloadType::Cpu => &self.cpu,
            WorkloadType::Mem => &self.mem,
            WorkloadType::Io => &self.io,
        }
    }
}

impl IndexMut<WorkloadType> for MixVector {
    #[inline]
    fn index_mut(&mut self, ty: WorkloadType) -> &mut u32 {
        match ty {
            WorkloadType::Cpu => &mut self.cpu,
            WorkloadType::Mem => &mut self.mem,
            WorkloadType::Io => &mut self.io,
        }
    }
}

impl Add for MixVector {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            cpu: self.cpu + rhs.cpu,
            mem: self.mem + rhs.mem,
            io: self.io + rhs.io,
        }
    }
}

impl AddAssign for MixVector {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for MixVector {
    type Output = Self;
    /// Panics on underflow; use [`MixVector::checked_sub`] when the
    /// relationship is not statically guaranteed.
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.checked_sub(&rhs)
            .expect("MixVector subtraction underflow")
    }
}

impl fmt::Display for MixVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.cpu, self.mem, self.io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_emptiness() {
        assert!(MixVector::EMPTY.is_empty());
        let m = MixVector::new(2, 1, 3);
        assert_eq!(m.total(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn homogeneity_and_sole_type() {
        assert!(MixVector::single(WorkloadType::Mem, 4).is_homogeneous());
        assert_eq!(
            MixVector::single(WorkloadType::Mem, 4).sole_type(),
            Some(WorkloadType::Mem)
        );
        assert!(!MixVector::new(1, 1, 0).is_homogeneous());
        assert_eq!(MixVector::new(1, 1, 0).sole_type(), None);
        assert!(!MixVector::EMPTY.is_homogeneous());
    }

    #[test]
    fn plus_minus_roundtrip() {
        let m = MixVector::new(1, 0, 0);
        let m2 = m.plus(WorkloadType::Io);
        assert_eq!(m2, MixVector::new(1, 0, 1));
        assert_eq!(m2.minus(WorkloadType::Io), Some(m));
        assert_eq!(m.minus(WorkloadType::Io), None);
    }

    #[test]
    fn ordering_matches_key_sort() {
        // The paper sorts database records by (Ncpu, Nmem, Nio) ascending;
        // the derived lexicographic Ord must agree.
        let a = MixVector::new(0, 5, 5);
        let b = MixVector::new(1, 0, 0);
        assert!(a < b);
        let c = MixVector::new(1, 0, 1);
        assert!(b < c);
    }

    #[test]
    fn space_enumerates_full_grid_in_order() {
        let bounds = MixVector::new(2, 1, 1);
        let all: Vec<_> = MixVector::space(bounds).collect();
        assert_eq!(all.len(), 3 * 2 * 2);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted, "space() must yield ascending key order");
        assert_eq!(all.first(), Some(&MixVector::EMPTY));
        assert_eq!(all.last(), Some(&bounds));
    }

    #[test]
    fn fits_and_sub() {
        let small = MixVector::new(1, 1, 0);
        let big = MixVector::new(2, 1, 1);
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
        assert_eq!(big - small, MixVector::new(1, 0, 1));
        assert_eq!(big.checked_sub(&MixVector::new(3, 0, 0)), None);
    }

    #[test]
    fn index_by_type() {
        let mut m = MixVector::EMPTY;
        m[WorkloadType::Cpu] = 5;
        assert_eq!(m.count(WorkloadType::Cpu), 5);
        assert_eq!(m.iter().map(|(_, n)| n).sum::<u32>(), 5);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(MixVector::new(1, 2, 3).to_string(), "(1,2,3)");
    }
}
