//! The paper's three-way workload classification.
//!
//! Section III-A of the paper profiles HPC benchmarks and labels each as
//! CPU-, memory-, or I/O-intensive (network-intensive workloads are treated
//! as a flavour of I/O at the allocation level; the paper's model database
//! is keyed by exactly three counts `(Ncpu, Nmem, Nio)`). A workload can in
//! reality be intensive along several dimensions — that richer structure
//! lives in `eavm-testbed::ApplicationProfile`; this enum is the coarse
//! label the *allocator* sees, mirroring the paper's assumption that "the
//! applications' profiles are known in advance (e.g., specified by the user
//! in the job definition)".

use std::fmt;
use std::str::FromStr;

use crate::error::EavmError;

/// Coarse application profile label used as the model database key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadType {
    /// CPU-intensive (e.g. HPL Linpack, FFTW).
    Cpu,
    /// Memory-intensive (e.g. sysbench under database-style load).
    Mem,
    /// Disk/network I/O-intensive (e.g. b_eff_io, bonnie++).
    Io,
}

impl WorkloadType {
    /// All workload types in canonical (database-key) order.
    pub const ALL: [WorkloadType; 3] = [WorkloadType::Cpu, WorkloadType::Mem, WorkloadType::Io];

    /// Canonical index of this type within [`Self::ALL`]; also the index of
    /// its count inside a [`crate::MixVector`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            WorkloadType::Cpu => 0,
            WorkloadType::Mem => 1,
            WorkloadType::Io => 2,
        }
    }

    /// Inverse of [`Self::index`]. Panics if `i >= 3`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Short lowercase name (`cpu` / `mem` / `io`), used in CSV headers.
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadType::Cpu => "cpu",
            WorkloadType::Mem => "mem",
            WorkloadType::Io => "io",
        }
    }
}

impl fmt::Display for WorkloadType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WorkloadType {
    type Err = EavmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cpu" => Ok(WorkloadType::Cpu),
            "mem" | "memory" => Ok(WorkloadType::Mem),
            "io" | "i/o" => Ok(WorkloadType::Io),
            other => Err(EavmError::Parse(format!(
                "unknown workload type: {other:?} (expected cpu|mem|io)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for (i, ty) in WorkloadType::ALL.iter().enumerate() {
            assert_eq!(ty.index(), i);
            assert_eq!(WorkloadType::from_index(i), *ty);
        }
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!("CPU".parse::<WorkloadType>().unwrap(), WorkloadType::Cpu);
        assert_eq!("memory".parse::<WorkloadType>().unwrap(), WorkloadType::Mem);
        assert_eq!(" i/o ".parse::<WorkloadType>().unwrap(), WorkloadType::Io);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("gpu".parse::<WorkloadType>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(WorkloadType::Cpu.to_string(), "cpu");
        assert_eq!(WorkloadType::Mem.to_string(), "mem");
        assert_eq!(WorkloadType::Io.to_string(), "io");
    }
}
