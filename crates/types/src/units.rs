//! Physical units as transparent newtypes over `f64`.
//!
//! The simulation deals in three quantities that are easy to confuse when
//! they are all bare `f64`s: elapsed time (seconds), consumed energy
//! (joules), and instantaneous power (watts). The newtypes below make the
//! dimensional relationships explicit: `Watts * Seconds = Joules`,
//! `Joules / Seconds = Watts`, and so on. Only physically meaningful
//! operator combinations are implemented.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Construct from a raw `f64` value.
            #[inline]
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// Extract the raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// `true` if the contained value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Total order on the raw value (`f64::total_cmp`):
            /// NaN-safe and deterministic, so sort keys never need a
            /// `partial_cmp(..).unwrap()`.
            #[inline]
            pub fn total_cmp(self, other: Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two same-unit quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// Elapsed or absolute simulation time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Instantaneous power in watts.
    Watts,
    "W"
);

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Power sustained for a duration yields energy.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Energy spread over a duration yields average power.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Energy at a given power draw lasts this long.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Joules {
    /// Energy-delay product, the paper's Table II `EDP` column
    /// (joule-seconds).
    #[inline]
    pub fn edp(self, delay: Seconds) -> f64 {
        self.0 * delay.0
    }

    /// Convert to kilojoules.
    #[inline]
    pub fn kilojoules(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Seconds {
    /// Convert to hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3_600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts(125.0) * Seconds(10.0);
        assert_eq!(e, Joules(1_250.0));
        let e2 = Seconds(10.0) * Watts(125.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn joules_over_seconds_is_watts() {
        assert_eq!(Joules(500.0) / Seconds(4.0), Watts(125.0));
    }

    #[test]
    fn joules_over_watts_is_seconds() {
        assert_eq!(Joules(500.0) / Watts(125.0), Seconds(4.0));
    }

    #[test]
    fn same_unit_ratio_is_dimensionless() {
        let r: f64 = Seconds(30.0) / Seconds(60.0);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let mut t = Seconds(1.0);
        t += Seconds(2.0);
        t -= Seconds(0.5);
        assert_eq!(t, Seconds(2.5));
        assert!(Seconds(1.0) < Seconds(2.0));
        assert_eq!(-Seconds(1.0), Seconds(-1.0));
        assert_eq!(Seconds(2.0) * 3.0, Seconds(6.0));
        assert_eq!(3.0 * Seconds(2.0), Seconds(6.0));
        assert_eq!(Seconds(6.0) / 3.0, Seconds(2.0));
        assert_eq!(Seconds(1.0).max(Seconds(2.0)), Seconds(2.0));
        assert_eq!(Seconds(1.0).min(Seconds(2.0)), Seconds(1.0));
        assert_eq!(Seconds(-1.5).abs(), Seconds(1.5));
    }

    #[test]
    fn sum_of_units() {
        let total: Joules = [Joules(1.0), Joules(2.0), Joules(3.5)].into_iter().sum();
        assert_eq!(total, Joules(6.5));
    }

    #[test]
    fn edp_matches_definition() {
        assert!((Joules(100.0).edp(Seconds(3.0)) - 300.0).abs() < 1e-12);
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Watts(125.456)), "125.46 W");
        assert_eq!(format!("{}", Joules(5.0)), "5 J");
    }

    #[test]
    fn conversions() {
        assert!((Joules(2_500.0).kilojoules() - 2.5).abs() < 1e-12);
        assert!((Seconds(7_200.0).hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finite_check() {
        assert!(Seconds(1.0).is_finite());
        assert!(!Seconds(f64::NAN).is_finite());
        assert!(!Seconds(f64::INFINITY).is_finite());
    }
}
