//! Seeded, deterministic fault plans for chaos-testing the allocator.
//!
//! Everything in this crate is a pure function of a `u64` seed: no wall
//! clock, no OS entropy, no dependencies. The same seed and parameters
//! always produce byte-identical fault schedules, which is what makes
//! "deterministic chaos" possible — a faulted simulation or replay can
//! be reproduced exactly, with telemetry on or off.
//!
//! Three fault families are modelled:
//!
//! * **Host crashes** ([`FaultKind::HostCrash`]) — a host dies at a
//!   scheduled instant, killing every resident VM, and stays down for a
//!   bounded interval before rejoining the fleet.
//! * **Transient degradation** ([`FaultKind::HostDegraded`]) — a host's
//!   effective capacity shrinks for a bounded window: resident VMs make
//!   progress at a reduced rate and the host is cordoned from new
//!   placements until the window closes.
//! * **Model-lookup failures** ([`LookupFaults`]) — individual
//!   allocation-model lookups transiently fail, exercising the
//!   analytic-fallback path of the proactive strategy.
//!
//! Event times are drawn from per-host exponential inter-arrival
//! streams (a memoryless failure process, the standard reliability
//! model), each host seeded independently so adding hosts never
//! perturbs the schedule of existing ones.

#![forbid(unsafe_code)]

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// Used both as the PRNG state transition and as a stateless hash for
/// per-lookup fault decisions.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Minimal SplitMix64 PRNG — deterministic, allocation-free, no wall
/// clock anywhere near it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed draw with the given mean (seconds).
    ///
    /// Returns `f64::INFINITY` for a non-positive mean, so a zero rate
    /// cleanly produces "never".
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        // 1 - u is in (0, 1], so ln() is finite and non-positive.
        -mean * (1.0 - self.next_f64()).ln()
    }
}

/// What happens to a host when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The host dies: resident VMs are killed and the host is removed
    /// from the placeable fleet for `down_for` seconds.
    HostCrash {
        /// Seconds until the host rejoins the fleet.
        down_for: f64,
    },
    /// The host degrades: resident VMs progress at `factor` of their
    /// normal rate and no new VMs are placed for `duration` seconds.
    HostDegraded {
        /// Seconds until the host recovers full capacity.
        duration: f64,
        /// Progress-rate multiplier while degraded, in `(0, 1]`.
        factor: f64,
    },
}

/// One scheduled fault: a host and the virtual instant it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time (seconds) at which the fault fires.
    pub at: f64,
    /// Index of the affected host within the fleet.
    pub host: usize,
    /// What happens to the host.
    pub kind: FaultKind,
}

/// Parameters from which a [`FaultPlan`] is generated.
///
/// Rates are expected events *per host-hour*; durations are seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for every stream derived by the plan.
    pub seed: u64,
    /// Expected host crashes per host-hour.
    pub crash_rate: f64,
    /// Expected degradation windows per host-hour.
    pub degrade_rate: f64,
    /// Mean downtime after a crash, seconds.
    pub mean_downtime: f64,
    /// Mean length of a degradation window, seconds.
    pub mean_degradation: f64,
    /// Progress-rate multiplier applied while a host is degraded.
    pub degrade_factor: f64,
    /// Probability that any individual model lookup transiently fails.
    pub lookup_failure_rate: f64,
}

impl FaultConfig {
    /// A quiet configuration: no faults of any kind.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            crash_rate: 0.0,
            degrade_rate: 0.0,
            mean_downtime: 1800.0,
            mean_degradation: 900.0,
            degrade_factor: 0.5,
            lookup_failure_rate: 0.0,
        }
    }

    /// The single-knob configuration the CLI exposes: `rate` expected
    /// crashes *and* degradations per host-hour, half-hour mean
    /// downtime, and a small per-lookup failure probability scaled off
    /// the same knob (capped so lookups still mostly succeed).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            crash_rate: rate,
            degrade_rate: rate,
            lookup_failure_rate: (rate * 0.01).min(0.25),
            ..FaultConfig::quiet(seed)
        }
    }
}

/// Stateless deterministic predicate for transient model-lookup
/// failures: lookup number `k` fails iff a hash of `(seed, k)` falls
/// below a rate-derived threshold. Cloneable and shareable — every
/// clone answers identically for the same `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupFaults {
    seed: u64,
    threshold: u64,
}

impl LookupFaults {
    /// Faults with the given per-lookup failure probability in `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        let clamped = rate.clamp(0.0, 1.0);
        // Map the probability onto the u64 range; 1.0 saturates.
        let threshold = if clamped >= 1.0 {
            u64::MAX
        } else {
            (clamped * u64::MAX as f64) as u64
        };
        LookupFaults { seed, threshold }
    }

    /// A predicate that never fails — zero branch cost on the hot path.
    pub fn disabled() -> Self {
        LookupFaults {
            seed: 0,
            threshold: 0,
        }
    }

    /// Whether any lookup can ever fail under this predicate.
    pub fn is_enabled(&self) -> bool {
        self.threshold > 0
    }

    /// The seed the predicate hashes with — exposed so companion
    /// subsystems (the service's model circuit breaker) can derive a
    /// probe stream that agrees bit-for-bit with this fault stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-lookup failure probability this predicate was built
    /// with, recovered from the stored threshold (1.0 when saturated).
    pub fn failure_rate(&self) -> f64 {
        if self.threshold == u64::MAX {
            1.0
        } else {
            self.threshold as f64 / u64::MAX as f64
        }
    }

    /// Whether lookup number `k` fails. Pure: same `k`, same answer.
    pub fn fails(&self, k: u64) -> bool {
        self.threshold > 0
            && mix64(self.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) < self.threshold
    }
}

impl Default for LookupFaults {
    fn default() -> Self {
        LookupFaults::disabled()
    }
}

// Stream-domain separators so crash and degradation schedules for the
// same host are independent.
const CRASH_STREAM: u64 = 0xC4A5_4001;
const DEGRADE_STREAM: u64 = 0xDE64_4ADE;
const DURATION_STREAM: u64 = 0xD0_4A71;

/// A fully materialized fault schedule for one fleet and horizon, plus
/// the lookup-failure predicate derived from the same seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    lookup: LookupFaults,
}

impl FaultPlan {
    /// A plan with no events and lookups that never fail.
    pub fn empty() -> Self {
        FaultPlan {
            events: Vec::new(),
            lookup: LookupFaults::disabled(),
        }
    }

    /// A plan from an explicit event list (sorted into canonical
    /// `(time, host)` order) plus a lookup-failure predicate. Useful for
    /// targeted chaos tests that need one specific fault at one specific
    /// instant rather than a sampled schedule.
    pub fn from_events(mut events: Vec<FaultEvent>, lookup: LookupFaults) -> Self {
        events.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.host.cmp(&b.host)));
        FaultPlan { events, lookup }
    }

    /// Generate the schedule for `hosts` hosts over `horizon` virtual
    /// seconds. Deterministic in `(cfg, hosts, horizon)`; each host's
    /// stream is seeded independently, so growing the fleet never
    /// reshuffles existing hosts' faults.
    pub fn generate(cfg: &FaultConfig, hosts: usize, horizon: f64) -> Self {
        let mut events = Vec::new();
        for host in 0..hosts {
            let host_seed = mix64(cfg.seed ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Self::host_stream(
                SplitMix64::new(host_seed ^ CRASH_STREAM),
                SplitMix64::new(host_seed ^ CRASH_STREAM ^ DURATION_STREAM),
                cfg.crash_rate,
                horizon,
                &mut events,
                |durations| FaultKind::HostCrash {
                    down_for: durations.next_exp(cfg.mean_downtime).min(horizon).max(1.0),
                },
                host,
            );
            Self::host_stream(
                SplitMix64::new(host_seed ^ DEGRADE_STREAM),
                SplitMix64::new(host_seed ^ DEGRADE_STREAM ^ DURATION_STREAM),
                cfg.degrade_rate,
                horizon,
                &mut events,
                |durations| FaultKind::HostDegraded {
                    duration: durations
                        .next_exp(cfg.mean_degradation)
                        .min(horizon)
                        .max(1.0),
                    factor: cfg.degrade_factor.clamp(0.05, 1.0),
                },
                host,
            );
        }
        // f64 times here are finite by construction; total_cmp gives a
        // total order, and (time, host) makes the sort fully stable.
        events.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.host.cmp(&b.host)));
        FaultPlan {
            events,
            lookup: LookupFaults::new(mix64(cfg.seed ^ 0x100C), cfg.lookup_failure_rate),
        }
    }

    fn host_stream(
        mut arrivals: SplitMix64,
        mut durations: SplitMix64,
        rate_per_hour: f64,
        horizon: f64,
        events: &mut Vec<FaultEvent>,
        mut kind: impl FnMut(&mut SplitMix64) -> FaultKind,
        host: usize,
    ) {
        if rate_per_hour <= 0.0 || horizon <= 0.0 {
            return;
        }
        let mean_gap = 3600.0 / rate_per_hour;
        let mut t = arrivals.next_exp(mean_gap);
        while t < horizon {
            events.push(FaultEvent {
                at: t,
                host,
                kind: kind(&mut durations),
            });
            t += arrivals.next_exp(mean_gap);
        }
    }

    /// The scheduled events, sorted by firing time then host.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The lookup-failure predicate derived from the plan's seed.
    pub fn lookup_faults(&self) -> LookupFaults {
        self.lookup
    }

    /// Whether the plan schedules nothing and lookups never fail.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && !self.lookup.is_enabled()
    }

    /// Number of scheduled host crashes.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostCrash { .. }))
            .count()
    }

    /// Number of scheduled degradation windows.
    pub fn degrade_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::HostDegraded { .. }))
            .count()
    }
}

/// Kill schedule for service shard workers: worker `i` dies (by
/// panicking) immediately before processing its `kill_after[i]`-th
/// mailbox message; `None` means the worker is immortal.
///
/// The kill *point* is deterministic per worker; which request happens
/// to be in flight when it fires depends on runtime interleaving, which
/// is exactly the regime the supervision protocol must survive.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerFaultPlan {
    kill_after: Vec<Option<u64>>,
}

impl WorkerFaultPlan {
    /// No worker ever dies.
    pub fn none(shards: usize) -> Self {
        WorkerFaultPlan {
            kill_after: vec![None; shards],
        }
    }

    /// Kill exactly one shard's worker before its `after`-th message.
    pub fn kill_shard(shards: usize, shard: usize, after: u64) -> Self {
        let mut plan = WorkerFaultPlan::none(shards);
        if shard < shards {
            plan.kill_after[shard] = Some(after.max(1));
        }
        plan
    }

    /// Seeded plan: each worker dies with probability `kill_probability`
    /// at an exponentially distributed message count of mean
    /// `mean_after`.
    pub fn generate(seed: u64, shards: usize, kill_probability: f64, mean_after: f64) -> Self {
        let mut kill_after = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut rng = SplitMix64::new(mix64(
                seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x3011,
            ));
            kill_after.push(if rng.next_f64() < kill_probability.clamp(0.0, 1.0) {
                Some(1 + rng.next_exp(mean_after.max(1.0)) as u64)
            } else {
                None
            });
        }
        WorkerFaultPlan { kill_after }
    }

    /// The message count before which worker `shard` dies, if any.
    pub fn kill_after(&self, shard: usize) -> Option<u64> {
        self.kill_after.get(shard).copied().flatten()
    }

    /// Whether any worker is scheduled to die.
    pub fn is_armed(&self) -> bool {
        self.kill_after.iter().any(|k| k.is_some())
    }
}

/// A scheduled *process* crash: the whole service aborts after the
/// journal has made its `after_events`-th admission event durable.
///
/// Unlike [`WorkerFaultPlan`], which kills one shard thread and lets the
/// supervisor respawn it, a process crash takes everything down — the
/// only survivor is the write-ahead journal, which is exactly what
/// `Service::recover` is tested against. The counter-based trigger makes
/// the crash point deterministic, so a chaos harness can crash a run at
/// a known WAL offset and compare the recovered verdict stream against
/// an uncrashed control byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    after_events: u64,
}

impl CrashSchedule {
    /// Crash once `n` journal events have been appended (clamped to at
    /// least 1 — "crash before doing anything" would journal nothing
    /// and prove nothing).
    pub fn after_events(n: u64) -> Self {
        CrashSchedule {
            after_events: n.max(1),
        }
    }

    /// Whether the process should crash now, given that `appended`
    /// events have been made durable.
    pub fn should_crash(&self, appended: u64) -> bool {
        appended >= self.after_events
    }

    /// The configured trigger count.
    pub fn trigger(&self) -> u64 {
        self.after_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultConfig::uniform(42, 2.0);
        let a = FaultPlan::generate(&cfg, 16, 36_000.0);
        let b = FaultPlan::generate(&cfg, 16, 36_000.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&FaultConfig::uniform(1, 2.0), 16, 36_000.0);
        let b = FaultPlan::generate(&FaultConfig::uniform(2, 2.0), 16, 36_000.0);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_stay_inside_the_horizon_and_are_sorted() {
        let plan = FaultPlan::generate(&FaultConfig::uniform(7, 4.0), 8, 7200.0);
        let events = plan.events();
        assert!(events.iter().all(|e| e.at > 0.0 && e.at < 7200.0));
        assert!(events.iter().all(|e| e.host < 8));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(plan.crash_count() + plan.degrade_count() == events.len());
    }

    #[test]
    fn event_count_tracks_the_rate() {
        // rate * hosts * hours = expected events; a 10x rate bump must
        // produce strictly more events on the same seed.
        let quiet = FaultPlan::generate(&FaultConfig::uniform(9, 0.5), 16, 36_000.0);
        let noisy = FaultPlan::generate(&FaultConfig::uniform(9, 5.0), 16, 36_000.0);
        assert!(noisy.events().len() > quiet.events().len());
        let expected = 5.0 * 16.0 * 10.0 * 2.0; // crash + degrade streams
        let got = noisy.events().len() as f64;
        assert!(
            got > expected * 0.5 && got < expected * 1.5,
            "expected ~{expected} events, got {got}"
        );
    }

    #[test]
    fn zero_rate_schedules_nothing() {
        let plan = FaultPlan::generate(&FaultConfig::quiet(3), 64, 1e6);
        assert!(plan.is_empty());
        assert!(!plan.lookup_faults().is_enabled());
    }

    #[test]
    fn growing_the_fleet_preserves_existing_host_schedules() {
        let cfg = FaultConfig::uniform(11, 3.0);
        let small = FaultPlan::generate(&cfg, 4, 10_000.0);
        let large = FaultPlan::generate(&cfg, 8, 10_000.0);
        let small_of_large: Vec<_> = large
            .events()
            .iter()
            .copied()
            .filter(|e| e.host < 4)
            .collect();
        assert_eq!(small.events(), small_of_large.as_slice());
    }

    #[test]
    fn lookup_faults_are_pure_and_rate_bounded() {
        let faults = LookupFaults::new(5, 0.1);
        let hits = (0..100_000u64).filter(|&k| faults.fails(k)).count();
        // 10% +- generous slack; the predicate is a hash, not a stream.
        assert!((5_000..15_000).contains(&hits), "hits = {hits}");
        for k in 0..1000 {
            assert_eq!(faults.fails(k), faults.fails(k), "purity at k={k}");
        }
        assert!(!LookupFaults::disabled().is_enabled());
        assert!((0..100_000u64).all(|k| !LookupFaults::disabled().fails(k)));
    }

    #[test]
    fn worker_plan_is_deterministic_and_targetable() {
        let a = WorkerFaultPlan::generate(21, 8, 0.5, 50.0);
        let b = WorkerFaultPlan::generate(21, 8, 0.5, 50.0);
        assert_eq!(a, b);
        assert!(WorkerFaultPlan::generate(21, 8, 1.0, 50.0).is_armed());
        assert!(!WorkerFaultPlan::none(4).is_armed());

        let one = WorkerFaultPlan::kill_shard(4, 2, 10);
        assert_eq!(one.kill_after(2), Some(10));
        assert_eq!(one.kill_after(0), None);
        assert_eq!(one.kill_after(99), None);
        // A zero message budget still kills before the first message.
        assert_eq!(WorkerFaultPlan::kill_shard(2, 0, 0).kill_after(0), Some(1));
    }

    #[test]
    fn crash_schedule_triggers_at_and_after_the_threshold() {
        let crash = CrashSchedule::after_events(5);
        assert_eq!(crash.trigger(), 5);
        assert!(!crash.should_crash(0));
        assert!(!crash.should_crash(4));
        assert!(crash.should_crash(5));
        assert!(crash.should_crash(6));
        // Zero clamps to 1: the crash always lets at least one event
        // become durable first.
        assert_eq!(CrashSchedule::after_events(0).trigger(), 1);
    }

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
        assert_eq!(SplitMix64::new(1).next_exp(0.0), f64::INFINITY);
        assert!(SplitMix64::new(1).next_exp(100.0) >= 0.0);
    }
}
