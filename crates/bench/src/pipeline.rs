//! The end-to-end evaluation pipeline (Sect. IV-A/B).
//!
//! Wires the whole reproduction together: build the empirical model on
//! the synthetic testbed (noisy-metered, like the paper), synthesize an
//! EGEE-like SWF trace, clean it, adapt it to typed VM requests capped at
//! the paper's 10,000 VMs, and replay it through the datacenter simulator
//! under each allocation strategy and cloud size.

use eavm_benchdb::{DbBuilder, ModelDatabase};
use eavm_core::{
    AllocationStrategy, AnalyticModel, DbModel, FirstFit, OptimizationGoal, Proactive,
};
use eavm_simulator::{CloudConfig, SimOutcome, Simulation, SimulationError};
use eavm_swf::{adapt, clean_trace, AdaptConfig, GeneratorConfig, TraceGenerator, VmRequest};
use eavm_types::{EavmError, Seconds, WorkloadType};

/// The strategies evaluated in Figures 5–7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// FIRST-FIT, one VM per CPU.
    Ff,
    /// FIRST-FIT-2: up to 2 VMs per CPU.
    Ff2,
    /// FIRST-FIT-3: up to 3 VMs per CPU.
    Ff3,
    /// PROACTIVE with the given α.
    Pa(f64),
}

impl StrategyKind {
    /// The six strategies of the paper's evaluation, in figure order.
    pub fn paper_set() -> Vec<StrategyKind> {
        vec![
            StrategyKind::Ff,
            StrategyKind::Ff2,
            StrategyKind::Ff3,
            StrategyKind::Pa(1.0),
            StrategyKind::Pa(0.0),
            StrategyKind::Pa(0.5),
        ]
    }

    /// Display label matching the paper (`FF`, `FF-2`, `FF-3`, `PA-1`,
    /// `PA-0`, `PA-0.5`).
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Ff => "FF".into(),
            StrategyKind::Ff2 => "FF-2".into(),
            StrategyKind::Ff3 => "FF-3".into(),
            StrategyKind::Pa(alpha) => OptimizationGoal::new(*alpha).expect("valid alpha").label(),
        }
    }
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Seed feeding the trace generator, the adapter, and the power
    /// meter.
    pub seed: u64,
    /// Cap on the total VM count of the adapted trace (paper: 10,000).
    pub total_vms: u32,
    /// Mean gap between submission bursts, seconds; smaller = higher
    /// load pressure.
    pub mean_burst_gap_s: f64,
    /// QoS factor: deadline = factor × solo time of the type.
    pub qos_factor: f64,
    /// PROACTIVE planning headroom (fraction of the deadline available to
    /// estimated execution time; the rest absorbs queueing delay).
    pub qos_margin: f64,
    /// Reference (SMALLER) cloud size in servers.
    pub smaller_servers: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0xE6EE,
            total_vms: 10_000,
            mean_burst_gap_s: 18.0,
            qos_factor: 3.0,
            qos_margin: 0.65,
            smaller_servers: 70,
        }
    }
}

impl PipelineConfig {
    /// A scaled-down configuration for fast tests (hundreds of VMs, small
    /// clouds).
    pub fn small(seed: u64) -> Self {
        PipelineConfig {
            seed,
            total_vms: 600,
            mean_burst_gap_s: 90.0,
            qos_factor: 3.0,
            qos_margin: 0.65,
            smaller_servers: 5,
        }
    }
}

/// The assembled evaluation pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Empirical model database (noisy-metered build).
    pub db: ModelDatabase,
    /// Ground truth executed by the simulator.
    pub ground_truth: AnalyticModel,
    /// The adapted, truncated request trace.
    pub requests: Vec<VmRequest>,
    /// Per-type response-time deadlines.
    pub deadlines: [Seconds; 3],
    /// Configuration this pipeline was built from.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// Build the full pipeline from a configuration.
    pub fn build(config: PipelineConfig) -> Result<Self, EavmError> {
        // 1. Empirical model, metered like the paper's methodology; the
        //    benchmark campaign fans out across cores (bit-identical to a
        //    sequential build).
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let db = DbBuilder {
            meter_seed: Some(config.seed),
            ..Default::default()
        }
        .build_parallel(threads)?;

        // 2. Synthetic EGEE-like trace — oversized so the post-cleaning
        // adaptation still reaches the VM cap, then truncated.
        let jobs_needed = (config.total_vms as usize / 2).max(64);
        let mut generator = TraceGenerator::new(GeneratorConfig {
            seed: config.seed,
            total_jobs: jobs_needed,
            mean_burst_gap_s: config.mean_burst_gap_s,
            ..Default::default()
        })
        .map_err(EavmError::InvalidConfig)?;
        let mut trace = generator.generate();
        clean_trace(&mut trace);

        // 3. Adapt to typed VM requests with per-type QoS deadlines.
        let solo = [
            db.aux().solo_time(WorkloadType::Cpu),
            db.aux().solo_time(WorkloadType::Mem),
            db.aux().solo_time(WorkloadType::Io),
        ];
        let adapt_cfg = AdaptConfig {
            qos_factor: config.qos_factor,
            ..AdaptConfig::paper(config.seed ^ 0xADAF, solo)
        };
        let mut requests = adapt::adapt_trace(&trace, &adapt_cfg);
        adapt::truncate_to_vm_total(&mut requests, config.total_vms);
        if requests.is_empty() {
            return Err(EavmError::InvalidConfig(
                "trace adaptation produced no requests".into(),
            ));
        }

        let deadlines = [
            adapt_cfg.deadline(WorkloadType::Cpu),
            adapt_cfg.deadline(WorkloadType::Mem),
            adapt_cfg.deadline(WorkloadType::Io),
        ];

        Ok(Pipeline {
            db,
            ground_truth: AnalyticModel::reference(),
            requests,
            deadlines,
            config,
        })
    }

    /// The paper's SMALLER/LARGER cloud pair for this configuration.
    pub fn clouds(&self) -> (CloudConfig, CloudConfig) {
        CloudConfig::smaller_and_larger(self.config.smaller_servers).expect("positive server count")
    }

    /// Instantiate a strategy by kind.
    pub fn strategy(&self, kind: StrategyKind) -> Box<dyn AllocationStrategy> {
        let cpu_slots = self.ground_truth.server().cpu_slots();
        match kind {
            StrategyKind::Ff => Box::new(FirstFit::ff(cpu_slots)),
            StrategyKind::Ff2 => Box::new(FirstFit::with_multiplex(cpu_slots, 2)),
            StrategyKind::Ff3 => Box::new(FirstFit::with_multiplex(cpu_slots, 3)),
            StrategyKind::Pa(alpha) => {
                let goal = OptimizationGoal::new(alpha).expect("valid alpha");
                Box::new(
                    Proactive::new(DbModel::new(self.db.clone()), goal, self.deadlines)
                        .with_qos_margin(self.config.qos_margin),
                )
            }
        }
    }

    /// Run one strategy on one cloud.
    pub fn run(
        &self,
        kind: StrategyKind,
        cloud: &CloudConfig,
    ) -> Result<SimOutcome, SimulationError> {
        let mut strategy = self.strategy(kind);
        self.run_custom(strategy.as_mut(), cloud)
    }

    /// Run a caller-supplied strategy (used by the model and fleet
    /// ablations).
    pub fn run_custom(
        &self,
        strategy: &mut dyn AllocationStrategy,
        cloud: &CloudConfig,
    ) -> Result<SimOutcome, SimulationError> {
        let sim = Simulation::new(self.ground_truth.clone(), cloud.clone());
        sim.run(strategy, &self.requests)
    }

    /// Run the full Figures 5–7 matrix: every paper strategy on both
    /// clouds. Returns `(cloud label, outcomes in strategy order)` pairs.
    pub fn run_matrix(&self) -> Result<Vec<SimOutcome>, SimulationError> {
        let (smaller, larger) = self.clouds();
        let mut out = Vec::new();
        for cloud in [&smaller, &larger] {
            for kind in StrategyKind::paper_set() {
                out.push(self.run(kind, cloud)?);
            }
        }
        Ok(out)
    }

    /// Total VMs in the adapted trace.
    pub fn total_vms(&self) -> u32 {
        self.requests.iter().map(|r| r.vm_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        let labels: Vec<String> = StrategyKind::paper_set()
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(labels, vec!["FF", "FF-2", "FF-3", "PA-1", "PA-0", "PA-0.5"]);
    }

    #[test]
    fn small_pipeline_builds_and_runs_ff() {
        let p = Pipeline::build(PipelineConfig::small(7)).unwrap();
        assert!(p.total_vms() <= 600);
        assert!(p.total_vms() > 500);
        let (smaller, larger) = p.clouds();
        assert!(larger.servers > smaller.servers);
        let out = p.run(StrategyKind::Ff, &smaller).unwrap();
        assert_eq!(out.strategy, "FF");
        assert_eq!(out.vms as u32, p.total_vms());
        assert!(out.makespan() > Seconds::ZERO);
    }

    #[test]
    fn proactive_runs_on_small_pipeline() {
        let p = Pipeline::build(PipelineConfig::small(8)).unwrap();
        let (smaller, _) = p.clouds();
        let out = p.run(StrategyKind::Pa(0.5), &smaller).unwrap();
        assert_eq!(out.strategy, "PA-0.5");
        assert_eq!(out.vms as u32, p.total_vms());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = Pipeline::build(PipelineConfig::small(9)).unwrap();
        let b = Pipeline::build(PipelineConfig::small(9)).unwrap();
        assert_eq!(a.requests, b.requests);
        let (cloud, _) = a.clouds();
        let ra = a.run(StrategyKind::Ff2, &cloud).unwrap();
        let rb = b.run(StrategyKind::Ff2, &cloud).unwrap();
        assert_eq!(ra, rb);
    }
}
