//! Terminal bar charts for the figure binaries.
//!
//! The paper's Figures 5–7 are grouped bar charts; these helpers render
//! the same data as Unicode horizontal bars so a terminal run of
//! `fig5_makespan` & co. *looks* like the figure, not just a table.

/// One labelled bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Row label (e.g. `SMALLER/FF`).
    pub label: String,
    /// Bar magnitude (must be ≥ 0 and finite).
    pub value: f64,
    /// Formatted value shown after the bar.
    pub display: String,
}

/// Render horizontal bars scaled to `width` characters at the maximum.
///
/// Uses eighth-block glyphs for sub-character resolution, so small
/// relative differences (the paper's 3 % effects) stay visible.
pub fn bar_chart(bars: &[Bar], width: usize) -> String {
    assert!(width >= 4, "chart width too small");
    let max = bars
        .iter()
        .map(|b| b.value)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);

    const EIGHTHS: [char; 8] = ['▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];
    let mut out = String::new();
    for b in bars {
        assert!(
            b.value.is_finite() && b.value >= 0.0,
            "bar values must be finite and non-negative"
        );
        let cells = b.value / max * width as f64;
        let full = cells.floor() as usize;
        let frac = cells - full as f64;
        let mut bar: String = std::iter::repeat_n('█', full).collect();
        if frac > 1.0 / 16.0 {
            let idx = ((frac * 8.0).round() as usize).clamp(1, 8) - 1;
            bar.push(EIGHTHS[idx]);
        }
        out.push_str(&format!(
            "{:<label_w$} |{:<width$}| {}\n",
            b.label, bar, b.display
        ));
    }
    out
}

/// Convenience: chart from `(label, value)` pairs with a value formatter.
pub fn chart_of<F: Fn(f64) -> String>(rows: &[(String, f64)], width: usize, fmt: F) -> String {
    let bars: Vec<Bar> = rows
        .iter()
        .map(|(label, v)| Bar {
            label: label.clone(),
            value: *v,
            display: fmt(*v),
        })
        .collect();
    bar_chart(&bars, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bars() -> Vec<Bar> {
        vec![
            Bar {
                label: "FF".into(),
                value: 100.0,
                display: "100".into(),
            },
            Bar {
                label: "PA-1".into(),
                value: 50.0,
                display: "50".into(),
            },
            Bar {
                label: "zero".into(),
                value: 0.0,
                display: "0".into(),
            },
        ]
    }

    #[test]
    fn longest_bar_fills_the_width() {
        let s = bar_chart(&bars(), 20);
        let first = s.lines().next().unwrap();
        assert_eq!(first.chars().filter(|&c| c == '█').count(), 20);
    }

    #[test]
    fn bars_scale_proportionally() {
        let s = bar_chart(&bars(), 20);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[2]), 0);
    }

    #[test]
    fn labels_are_aligned() {
        let s = bar_chart(&bars(), 10);
        let pipes: Vec<usize> = s.lines().map(|l| l.find('|').unwrap()).collect();
        assert!(pipes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn fractional_tails_appear() {
        let b = vec![
            Bar {
                label: "a".into(),
                value: 16.0,
                display: String::new(),
            },
            Bar {
                label: "b".into(),
                value: 15.0,
                display: String::new(),
            },
        ];
        let s = bar_chart(&b, 16);
        let second = s.lines().nth(1).unwrap();
        // 15/16 of 16 cells = 15 full cells; equal-full-cell case should
        // still differ from the max bar via the eighth-block tail.
        assert_eq!(second.chars().filter(|&c| c == '█').count(), 15);
    }

    #[test]
    fn chart_of_formats_values() {
        let rows = vec![("x".to_string(), 2.0), ("y".to_string(), 1.0)];
        let s = chart_of(&rows, 8, |v| format!("{v:.1}s"));
        assert!(s.contains("2.0s"));
        assert!(s.contains("y"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        let b = vec![Bar {
            label: "n".into(),
            value: f64::NAN,
            display: String::new(),
        }];
        bar_chart(&b, 10);
    }
}
