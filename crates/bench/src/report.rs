//! Fixed-width table rendering for experiment binaries.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with thousands grouping for readability.
pub fn grouped(v: f64) -> String {
    let neg = v < 0.0;
    let int = v.abs().round() as u64;
    let s = int.to_string();
    let mut grouped = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(c);
    }
    if neg {
        format!("-{grouped}")
    } else {
        grouped
    }
}

/// Percentage delta of `b` relative to `a` (positive = `b` larger).
pub fn pct_delta(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        0.0
    } else {
        100.0 * (b - a) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn grouping() {
        assert_eq!(grouped(1_234_567.0), "1,234,567");
        assert_eq!(grouped(999.4), "999");
        assert_eq!(grouped(-1_000.0), "-1,000");
        assert_eq!(grouped(0.0), "0");
    }

    #[test]
    fn pct_delta_signs() {
        assert!((pct_delta(100.0, 88.0) + 12.0).abs() < 1e-12);
        assert!((pct_delta(100.0, 118.0) - 18.0).abs() < 1e-12);
        assert_eq!(pct_delta(0.0, 5.0), 0.0);
    }
}
