//! Ablation: power accounting for empty servers.
//!
//! Default accounting powers a server only while it hosts VMs (the
//! consolidation-saves-energy regime of Sect. I). The always-on variant
//! charges every provisioned server the 125 W floor for the whole
//! makespan. Under always-on accounting the energy ranking collapses
//! onto the makespan ranking — quantifying how much of PROACTIVE's
//! energy advantage is *placement* (mix efficiency) vs *fleet sizing*.

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_simulator::Simulation;

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();

    let mut t = Table::new(vec![
        "strategy",
        "energy_J (busy-only)",
        "energy_J (always-on)",
        "always-on uplift (%)",
    ]);
    for kind in [
        StrategyKind::Ff,
        StrategyKind::Pa(1.0),
        StrategyKind::Pa(0.0),
    ] {
        let busy = p.run(kind, &smaller).expect("busy-only run");
        let sim = Simulation::new(p.ground_truth.clone(), smaller.clone()).with_always_on_fleet();
        let mut strategy = p.strategy(kind);
        let on = sim
            .run(strategy.as_mut(), &p.requests)
            .expect("always-on run");
        t.row(vec![
            kind.label(),
            format!("{:.3e}", busy.energy.value()),
            format!("{:.3e}", on.energy.value()),
            format!("{:+.1}", pct_delta(busy.energy.value(), on.energy.value())),
        ]);
    }
    println!("{}", t.render());
}
