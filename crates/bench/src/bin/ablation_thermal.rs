//! Ablation: thermal consequences of consolidation depth (the paper's
//! future-work item ii, "autonomic thermal management").
//!
//! Drives the RC thermal model with the power traces of single-server
//! FFTW consolidation runs: deeper packing raises the steady
//! temperature toward the saturated-CPU ceiling, but *shortens* the hot
//! interval per unit of work. The table reports peak/mean temperature
//! and degree-seconds above a 60 °C hotspot threshold per completed VM
//! — the quantity a thermal-aware allocator would trade against energy.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_testbed::{ApplicationProfile, RunSimulator, ThermalModel};
use eavm_types::Seconds;

fn main() {
    let sim = RunSimulator::reference();
    let fftw = ApplicationProfile::fftw();
    let thermal = ThermalModel::default();
    let hotspot_c = 60.0;

    let mut t = Table::new(vec![
        "n_vms",
        "makespan_s",
        "peak_C",
        "mean_C",
        "hot_degree_seconds",
        "hot_ds_per_vm",
    ]);
    for n in [1usize, 2, 4, 6, 9, 12, 16] {
        let out = sim.run_clones(&fftw, n, None);
        let th = thermal.evaluate(
            &out.power_trace,
            out.makespan,
            thermal.ambient_c,
            Seconds(5.0),
        );
        // Degree-seconds above the hotspot threshold.
        let mut hot_ds = 0.0;
        for w in th.samples.windows(2) {
            let dt = (w[1].time - w[0].time).value();
            let over = (w[1].temp_c - hotspot_c).max(0.0);
            hot_ds += over * dt;
        }
        t.row(vec![
            n.to_string(),
            format!("{:.0}", out.makespan.value()),
            format!("{:.1}", th.peak_c),
            format!("{:.1}", th.mean_c),
            format!("{:.0}", hot_ds),
            format!("{:.0}", hot_ds / n as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: peak temperature saturates once the CPU is saturated (~4 VMs), so the\n\
         thermal cost of consolidation is dominated by *time spent hot*; past the thrash\n\
         cliff (12+ VMs) hot degree-seconds per VM explode together with execution time —\n\
         a thermal-aware goal would therefore reinforce, not fight, the paper's optima."
    );
}
