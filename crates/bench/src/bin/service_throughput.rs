//! Throughput of the online allocation service (`eavm-service`) at
//! 1–8 shards on the paper's 10,000-VM trace.
//!
//! For each shard count the full adapted trace is replayed through a
//! live [`eavm_service::AllocService`] (bounded admission, batched
//! fast-path dispatch, cross-shard two-phase slow path) and the wall
//! time, request throughput, memoization hit-rate, and admission
//! breakdown are reported. Usage:
//!
//! ```text
//! service_throughput [total_vms] [servers] [shard_counts,comma-separated]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use eavm_bench::{Pipeline, PipelineConfig};
use eavm_service::{replay_online, ServiceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total_vms: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let servers: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(70);
    let shard_counts: Vec<usize> = args
        .get(3)
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let pipeline = Pipeline::build(PipelineConfig {
        total_vms,
        smaller_servers: servers,
        ..Default::default()
    })
    .expect("pipeline build");
    println!(
        "# service_throughput: {} requests / {} VMs on {} servers",
        pipeline.requests.len(),
        total_vms,
        servers
    );
    println!(
        "{:<7} {:>9} {:>9} {:>7} {:>10} {:>9} {:>9} {:>7} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "shards",
        "wall_s",
        "req/s",
        "eff%",
        "hit_rate%",
        "local",
        "cross",
        "shed",
        "conflicts",
        "p50_us",
        "p95_us",
        "p99_us",
        "energy_MJ"
    );

    // (first shard count, its wall time, its throughput): the scaling
    // baseline. eff% = throughput at N shards / (N/N0 x baseline
    // throughput) — 100% means perfectly linear scaling from the first
    // configuration (normally 1 shard).
    let mut baseline: Option<(usize, f64, f64)> = None;
    for &shards in &shard_counts {
        let mut config = ServiceConfig::new(shards, servers);
        config.deadlines = pipeline.deadlines;
        config.qos_margin = pipeline.config.qos_margin;

        let started = Instant::now();
        let report =
            replay_online(&pipeline.db, config, &pipeline.requests).expect("replay_online");
        let wall = started.elapsed().as_secs_f64();
        let stats = &report.stats;
        let throughput = report.requests as f64 / wall.max(1e-9);
        let shed = stats.shed_admission + stats.shed_wait_queue + stats.shed_unplaceable;
        let lat = &stats.admission_latency_us;
        let efficiency = match baseline {
            None => 100.0,
            Some((base_shards, _, base_tput)) => {
                let ideal = base_tput * shards as f64 / base_shards as f64;
                100.0 * throughput / ideal.max(1e-9)
            }
        };
        println!(
            "{:<7} {:>9.3} {:>9.0} {:>7.1} {:>10.1} {:>9} {:>9} {:>7} {:>9} {:>8} {:>8} {:>8} {:>10.3}",
            shards,
            wall,
            throughput,
            efficiency,
            100.0 * stats.aggregate_cache.hit_rate(),
            stats.admitted_local,
            stats.admitted_cross_shard,
            shed,
            stats.reserve_conflicts,
            lat.p50,
            lat.p95,
            lat.p99,
            stats.estimated_energy.value() / 1e6,
        );
        match baseline {
            None => baseline = Some((shards, wall, throughput)),
            Some((base_shards, base_wall, _)) => println!(
                "#   speedup vs {base_shards} shard(s) at {shards} shards: {:.2}x \
                 (scaling efficiency {efficiency:.1}%)",
                base_wall / wall.max(1e-9)
            ),
        }
    }
}
