//! Experiment: heterogeneous server hardware (the paper's future-work
//! item i, here implemented end-to-end).
//!
//! Fleet A is the homogeneous SMALLER cloud (70 reference servers).
//! Fleet B swaps 20 reference servers for 10 dual-socket big nodes
//! (similar aggregate CPU-slot count: 50×4 + 10×8 = 280 slots = 70×4).
//! Three allocators run on fleet B:
//!
//! * FF — slot-aware first fit (sees each platform's true slot count);
//! * PA-1 naive — PROACTIVE with only the reference-platform database
//!   (what the paper's homogeneous model would do on mixed hardware);
//! * PA-1 platform-aware — PROACTIVE with one database per platform
//!   ("we should include system characteristics such as number of CPUs,
//!   amount of memory, ..." — Sect. III-C).

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_benchdb::DbBuilder;
use eavm_core::{AnalyticModel, DbModel, OptimizationGoal, Proactive};
use eavm_simulator::{CloudConfig, Simulation};
use eavm_testbed::{BenchmarkSuite, ContentionModel, RunSimulator, ServerSpec};
use eavm_types::MixVector;

fn main() {
    let alpha: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1.0);
    let goal = OptimizationGoal::new(alpha).expect("alpha");
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();

    // Per-platform ground truth and allocator knowledge for the big node.
    eprintln!("building the big-node database...");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let db_big = DbBuilder {
        sim: RunSimulator {
            server: ServerSpec::big_node(),
            model: ContentionModel::default(),
        },
        meter_seed: Some(p.config.seed),
        ..Default::default()
    }
    .build_parallel(threads)
    .expect("big-node db");
    eprintln!(
        "big-node bounds {} vs reference {}",
        db_big.aux().os_bounds,
        p.db.aux().os_bounds
    );
    let big_truth = AnalyticModel::new(
        ServerSpec::big_node(),
        ContentionModel::default(),
        &BenchmarkSuite::standard(),
        MixVector::new(24, 24, 24),
    );

    let mixed_ref_servers = smaller.servers - 20;
    let mixed_big_servers = 10;
    let mixed_cloud = CloudConfig::new("MIXED", mixed_ref_servers).expect("cloud");
    let hetero_sim = |name: &str| {
        let mut c = mixed_cloud.clone();
        c.name = name.to_string();
        Simulation::new(p.ground_truth.clone(), c)
            .with_platform(big_truth.clone(), mixed_big_servers)
    };

    let mut t = Table::new(vec![
        "fleet",
        "strategy",
        "makespan_s",
        "energy_J",
        "sla_pct",
        "peak_busy",
        "mean_wait_s",
    ]);
    let mut push = |fleet: &str, out: eavm_simulator::SimOutcome| {
        t.row(vec![
            fleet.to_string(),
            out.strategy.clone(),
            format!("{:.0}", out.makespan().value()),
            format!("{:.3e}", out.energy.value()),
            format!("{:.1}", out.sla_violation_pct()),
            out.peak_servers_busy.to_string(),
            format!("{:.0}", out.mean_wait_time().value()),
        ]);
        out
    };

    // Fleet A: the homogeneous baseline.
    let homo_ff = push(
        "homogeneous",
        p.run(StrategyKind::Ff, &smaller).expect("ff"),
    );
    let homo_pa = push(
        "homogeneous",
        p.run(StrategyKind::Pa(alpha), &smaller).expect("pa"),
    );

    // Fleet B: mixed hardware.
    let mut ff = p.strategy(StrategyKind::Ff);
    let mixed_ff = push(
        "mixed",
        hetero_sim("MIXED")
            .run(ff.as_mut(), &p.requests)
            .expect("mixed ff"),
    );

    let mut pa_naive = Proactive::new(DbModel::new(p.db.clone()), goal, p.deadlines)
        .with_qos_margin(p.config.qos_margin);
    let mixed_naive = push(
        "mixed (naive PA)",
        hetero_sim("MIXED")
            .run(&mut pa_naive, &p.requests)
            .expect("naive"),
    );

    let mut pa_aware = Proactive::heterogeneous(
        vec![DbModel::new(p.db.clone()), DbModel::new(db_big)],
        goal,
        p.deadlines,
    )
    .with_qos_margin(p.config.qos_margin);
    let mixed_aware = push(
        "mixed (aware PA)",
        hetero_sim("MIXED")
            .run(&mut pa_aware, &p.requests)
            .expect("aware"),
    );

    println!("{}", t.render());
    println!(
        "platform awareness on mixed hardware: {:.1}% energy, {:.1}% makespan vs the naive \
         single-database allocator",
        pct_delta(mixed_naive.energy.value(), mixed_aware.energy.value()),
        pct_delta(
            mixed_naive.makespan().value(),
            mixed_aware.makespan().value()
        ),
    );
    println!(
        "context: homogeneous FF {:.3e} J / PA {:.3e} J; mixed FF {:.3e} J",
        homo_ff.energy.value(),
        homo_pa.energy.value(),
        mixed_ff.energy.value(),
    );
    println!();
    println!(
        "reading: platform-aware models do NOT automatically help the paper's greedy\n\
         per-block scoring. The big node's honest estimates (210 W idle floor, higher\n\
         absolute run energies) make it look expensive to the energy goal, so the aware\n\
         allocator under-uses exactly the machines with the most capacity and queues on\n\
         the reference servers; the naive single-database allocator mis-prices big nodes\n\
         as reference machines and accidentally load-balances. Heterogeneity needs a\n\
         utilization-normalized objective or placement lookahead, not just per-platform\n\
         data — which is presumably why the paper left it as future work."
    );
}
