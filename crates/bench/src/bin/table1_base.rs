//! Table I — "Summary of parameters obtained in base tests": the optimal
//! VM counts for performance (`OSP*`) and energy (`OSE*`) per workload
//! type, and the solo reference runtimes (`T*`), measured on the
//! synthetic testbed exactly as Sect. III-B describes.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_benchdb::DbBuilder;
use eavm_types::WorkloadType;

fn main() {
    let builder = DbBuilder::default();
    let base = builder.run_base_tests();

    let perf = base.os_perf();
    let energy = base.os_energy();
    let bounds = base.os_bounds();
    let solo = base.solo_times();

    let mut t = Table::new(vec!["parameter", "CPU", "Memory", "I/O"]);
    t.row(vec![
        "#VMs that optimize performance (OSP)".to_string(),
        perf.cpu.to_string(),
        perf.mem.to_string(),
        perf.io.to_string(),
    ]);
    t.row(vec![
        "#VMs that optimize energy (OSE)".to_string(),
        energy.cpu.to_string(),
        energy.mem.to_string(),
        energy.io.to_string(),
    ]);
    t.row(vec![
        "Run time of single test on 1 VM (T), s".to_string(),
        format!("{:.0}", solo[0].value()),
        format!("{:.0}", solo[1].value()),
        format!("{:.0}", solo[2].value()),
    ]);
    t.row(vec![
        "Combined-test bound OS = max(OSP, OSE)".to_string(),
        bounds.cpu.to_string(),
        bounds.mem.to_string(),
        bounds.io.to_string(),
    ]);
    println!("{}", t.render());

    for ty in WorkloadType::ALL {
        let r = base.report(ty);
        println!(
            "{}: representative benchmark `{}`, {} base points",
            ty,
            r.benchmark,
            r.points.len()
        );
    }
}
