//! Fig. 7 — "Percentage of SLA violations": missed response-time
//! deadlines per strategy × cloud, replaying the 10,000-VM adapted
//! trace. The paper's observations: PROACTIVE violates least, violations
//! correlate with makespan, and the SMALLER (more loaded) cloud violates
//! more.

#![forbid(unsafe_code)]

use eavm_bench::chart::chart_of;
use eavm_bench::report::Table;
use eavm_bench::{Pipeline, PipelineConfig};
use eavm_types::WorkloadType;

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let outcomes = p.run_matrix().expect("matrix");

    let mut t = Table::new(vec![
        "cloud",
        "strategy",
        "sla_violations",
        "sla_pct",
        "mean_wait_s",
        "makespan_s",
    ]);
    for o in &outcomes {
        t.row(vec![
            o.cloud.clone(),
            o.strategy.clone(),
            o.sla_violations.to_string(),
            format!("{:.1}", o.sla_violation_pct()),
            format!("{:.0}", o.mean_wait_time().value()),
            format!("{:.0}", o.makespan().value()),
        ]);
    }
    println!("{}", t.render());

    let rows: Vec<(String, f64)> = outcomes
        .iter()
        .map(|o| (format!("{}/{}", o.cloud, o.strategy), o.sla_violation_pct()))
        .collect();
    println!("{}", chart_of(&rows, 48, |v| format!("{v:.1} %")));

    // Per-type breakdown on the loaded cloud (QoS is defined per type).
    let mut pt = Table::new(vec!["strategy", "cpu_sla_pct", "mem_sla_pct", "io_sla_pct"]);
    for o in outcomes.iter().filter(|o| o.cloud == "SMALLER") {
        pt.row(vec![
            o.strategy.clone(),
            format!("{:.1}", o.sla_violation_pct_of(WorkloadType::Cpu)),
            format!("{:.1}", o.sla_violation_pct_of(WorkloadType::Mem)),
            format!("{:.1}", o.sla_violation_pct_of(WorkloadType::Io)),
        ]);
    }
    println!("per-type SLA violations (SMALLER):");
    println!("{}", pt.render());

    // Correlation check: makespan vs SLA% rank-agreement per cloud.
    for cloud in ["SMALLER", "LARGER"] {
        let mut pairs: Vec<(f64, f64)> = outcomes
            .iter()
            .filter(|o| o.cloud == cloud)
            .map(|o| (o.makespan().value(), o.sla_violation_pct()))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let monotone = pairs.windows(2).filter(|w| w[1].1 >= w[0].1 - 1.0).count();
        println!(
            "{cloud}: SLA% tracks makespan in {}/{} adjacent strategy pairs \
             (paper: \"the higher the makespan the higher the percentage of SLA violations\")",
            monotone,
            pairs.len() - 1
        );
    }
}
