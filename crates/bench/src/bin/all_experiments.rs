//! Run the complete evaluation — every table and figure of the paper —
//! and print a paper-vs-measured summary suitable for `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig};
use eavm_benchdb::combined::expected_combined_count;
use eavm_core::estimate::{weighted_energy, weighted_exec_time};
use eavm_simulator::SimOutcome;
use eavm_testbed::{ApplicationProfile, ClassificationRule, Profiler, RunSimulator, Subsystem};
use eavm_types::{Joules, Seconds, WorkloadType};

fn check(name: &str, paper: &str, measured: String, ok: bool) {
    println!(
        "[{}] {name}\n        paper:    {paper}\n        measured: {measured}",
        if ok { "PASS" } else { "WARN" }
    );
}

fn find<'a>(outs: &'a [SimOutcome], cloud: &str, strat: &str) -> &'a SimOutcome {
    outs.iter()
        .find(|o| o.cloud == cloud && o.strategy == strat)
        .expect("matrix outcome")
}

fn main() {
    println!("== eavm: full reproduction run ==\n");

    // ---- Fig. 1: profiling & classification --------------------------
    let mut profiler = Profiler::reference(1);
    let rule = ClassificationRule::default();
    let fftw = profiler.classify(&ApplicationProfile::fftw(), &rule);
    let mpi = profiler.classify(&ApplicationProfile::mpi_compute_comm(), &rule);
    check(
        "Fig. 1: workload classification",
        "left = CPU-intensive only; right = CPU- cum network-intensive",
        format!(
            "fftw intensive along {:?}; mpi intensive along {:?}",
            fftw.intensive.iter().map(|s| s.name()).collect::<Vec<_>>(),
            mpi.intensive.iter().map(|s| s.name()).collect::<Vec<_>>()
        ),
        fftw.intensive == vec![Subsystem::Cpu]
            && mpi.intensive.contains(&Subsystem::Cpu)
            && mpi.intensive.contains(&Subsystem::Net),
    );

    // ---- Fig. 2: FFTW consolidation curve ----------------------------
    let sim = RunSimulator::reference();
    let fftw_app = ApplicationProfile::fftw();
    let avg = |n: usize| sim.run_clones(&fftw_app, n, None).avg_time_per_vm().value();
    let best_n = (1..=16)
        .min_by(|&a, &b| avg(a).partial_cmp(&avg(b)).unwrap())
        .unwrap();
    check(
        "Fig. 2: FFTW optimal consolidation",
        "shortest average execution time at 9 VMs; significant increase past 11",
        format!(
            "optimum at {best_n} VMs; avg(12)/avg({best_n}) = {:.2}x",
            avg(12) / avg(best_n)
        ),
        (8..=10).contains(&best_n) && avg(12) > 1.4 * avg(best_n),
    );

    // ---- Pipeline (model + trace) ------------------------------------
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let aux = p.db.aux();

    // ---- Table I ------------------------------------------------------
    check(
        "Table I: base-test parameters",
        "OSP/OSE per type and TC/TM/TI recorded in the auxiliary file",
        format!(
            "OSP={} OSE={} T=({:.0},{:.0},{:.0})s",
            aux.os_perf,
            aux.os_energy,
            aux.solo_times[0].value(),
            aux.solo_times[1].value(),
            aux.solo_times[2].value()
        ),
        aux.os_perf.fits_within(&aux.os_bounds) && aux.os_energy.fits_within(&aux.os_bounds),
    );

    // ---- Table II -----------------------------------------------------
    let combined = expected_combined_count(aux.os_bounds);
    check(
        "Table II: model database",
        "CSV registers sorted by (Ncpu,Nmem,Nio); combined count follows the paper formula",
        format!(
            "{} registers = 3x16 base + {} combined; bounds {}",
            p.db.len(),
            combined,
            aux.os_bounds
        ),
        p.db.len() == 48 + combined,
    );

    // ---- Fig. 4: interval weighting -----------------------------------
    let exec = weighted_exec_time(&[(0.7, Seconds(1200.0)), (0.3, Seconds(1800.0))]).unwrap();
    let energy = weighted_energy(&[
        (0.35, Joules(15_000.0)),
        (0.15, Joules(20_000.0)),
        (0.5, Joules(12_000.0)),
    ])
    .unwrap();
    check(
        "Fig. 4: interval-weighted estimation",
        "ExecTime_VM1 = 1380 s; Energy = 14.25 kJ",
        format!("{:.0}; {:.2} kJ", exec, energy.kilojoules()),
        exec == Seconds(1380.0) && (energy.kilojoules() - 14.25).abs() < 1e-9,
    );

    // ---- Figures 5-7: the strategy x cloud matrix ---------------------
    eprintln!(
        "\nrunning the strategy x cloud matrix ({} requests, {} VMs)...",
        p.requests.len(),
        p.total_vms()
    );
    let outs = p.run_matrix().expect("matrix");

    let mut t = Table::new(vec![
        "cloud",
        "strategy",
        "makespan_s",
        "energy_J",
        "sla_pct",
    ]);
    for o in &outs {
        t.row(vec![
            o.cloud.clone(),
            o.strategy.clone(),
            format!("{:.0}", o.makespan().value()),
            format!("{:.3e}", o.energy.value()),
            format!("{:.1}", o.sla_violation_pct()),
        ]);
    }
    println!("\n{}", t.render());

    let ff_s = find(&outs, "SMALLER", "FF");
    let ff_l = find(&outs, "LARGER", "FF");
    let pa1_s = find(&outs, "SMALLER", "PA-1");
    let pa0_s = find(&outs, "SMALLER", "PA-0");
    let pa05_s = find(&outs, "SMALLER", "PA-0.5");
    let ff3_s = find(&outs, "SMALLER", "FF-3");

    let best_pa_makespan = [pa1_s, pa0_s, pa05_s]
        .iter()
        .map(|o| o.makespan().value())
        .fold(f64::INFINITY, f64::min);
    check(
        "Fig. 5: makespan",
        "PROACTIVE up to 18% shorter than FF; FF-3 worst; SMALLER slower than LARGER",
        format!(
            "best PA {:.1}% shorter than FF; FF-3/FF = {:.2}x; SMALLER/LARGER FF = {:.2}x",
            -pct_delta(ff_s.makespan().value(), best_pa_makespan),
            ff3_s.makespan().value() / ff_s.makespan().value(),
            ff_s.makespan().value() / ff_l.makespan().value()
        ),
        best_pa_makespan < ff_s.makespan().value()
            && ff3_s.makespan() > ff_s.makespan()
            && ff_s.makespan() > ff_l.makespan(),
    );

    check(
        "Fig. 6: energy",
        "PROACTIVE ~12% below FF; PA-1 below PA-0 (almost 3%); SMALLER below LARGER",
        format!(
            "PA-1 {:.1}% below FF; PA-1 {:.1}% below PA-0; SMALLER FF {:.1}% below LARGER FF",
            -pct_delta(ff_s.energy.value(), pa1_s.energy.value()),
            -pct_delta(pa0_s.energy.value(), pa1_s.energy.value()),
            -pct_delta(ff_l.energy.value(), ff_s.energy.value())
        ),
        pa1_s.energy < ff_s.energy && pa1_s.energy < pa0_s.energy && ff_s.energy < ff_l.energy,
    );

    check(
        "Fig. 7: SLA violations",
        "PROACTIVE lowest; correlated with makespan; SMALLER above LARGER",
        format!(
            "PA-1 {:.1}% / PA-0 {:.1}% vs FF {:.1}% / FF-3 {:.1}% (SMALLER); LARGER FF {:.1}%",
            pa1_s.sla_violation_pct(),
            pa0_s.sla_violation_pct(),
            ff_s.sla_violation_pct(),
            ff3_s.sla_violation_pct(),
            ff_l.sla_violation_pct()
        ),
        pa1_s.sla_violations < ff_s.sla_violations
            && ff3_s.sla_violations >= ff_s.sla_violations
            && ff_s.sla_violation_pct() > ff_l.sla_violation_pct(),
    );

    check(
        "PA-0 vs PA-1 on performance",
        "performance goal more than 3% faster than energy goal",
        format!(
            "PA-0 {:.1}% faster than PA-1 (ours is smaller; see EXPERIMENTS.md)",
            -pct_delta(pa1_s.makespan().value(), pa0_s.makespan().value())
        ),
        pa0_s.makespan() <= pa1_s.makespan(),
    );

    // ---- Per-type deadline summary ------------------------------------
    println!("\nper-type QoS deadlines (response time): ");
    for ty in WorkloadType::ALL {
        println!("  {ty}: {:.0}", p.deadlines[ty.index()]);
    }
    println!("\ndone.");
}
