//! Robustness: re-run the headline comparisons across independent trace
//! seeds (new synthetic EGEE trace, new profile assignment, new meter
//! noise per seed) and report mean ± population stddev of the headline
//! percentages. Seeds run in parallel, one OS thread each.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_bench::stats::Summary;
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};

struct SeedResult {
    seed: u64,
    makespan_gain_pct: f64,
    energy_saving_pct: f64,
    sla_ff_pct: f64,
    sla_pa_pct: f64,
}

fn run_seed(seed: u64) -> SeedResult {
    let cfg = PipelineConfig {
        seed,
        ..Default::default()
    };
    let p = Pipeline::build(cfg).expect("pipeline");
    let (smaller, _) = p.clouds();
    let ff = p.run(StrategyKind::Ff, &smaller).expect("ff");
    let pa1 = p.run(StrategyKind::Pa(1.0), &smaller).expect("pa1");
    let pa0 = p.run(StrategyKind::Pa(0.0), &smaller).expect("pa0");
    SeedResult {
        seed,
        makespan_gain_pct: 100.0 * (1.0 - pa0.makespan() / ff.makespan()),
        energy_saving_pct: 100.0 * (1.0 - pa1.energy / ff.energy),
        sla_ff_pct: ff.sla_violation_pct(),
        sla_pa_pct: pa0.sla_violation_pct(),
    }
}

fn main() {
    let seeds: Vec<u64> = vec![0xE6EE, 11, 22, 33, 44];
    let results: Vec<SeedResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&s| scope.spawn(move || run_seed(s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed worker"))
            .collect()
    });

    let mut t = Table::new(vec![
        "seed",
        "PA-0 makespan gain %",
        "PA-1 energy saving %",
        "FF SLA %",
        "PA-0 SLA %",
    ]);
    for r in &results {
        t.row(vec![
            format!("{:#x}", r.seed),
            format!("{:.1}", r.makespan_gain_pct),
            format!("{:.1}", r.energy_saving_pct),
            format!("{:.1}", r.sla_ff_pct),
            format!("{:.1}", r.sla_pa_pct),
        ]);
    }
    println!("{}", t.render());

    let gains = Summary::of(
        &results
            .iter()
            .map(|r| r.makespan_gain_pct)
            .collect::<Vec<_>>(),
    )
    .expect("finite gains");
    let savings = Summary::of(
        &results
            .iter()
            .map(|r| r.energy_saving_pct)
            .collect::<Vec<_>>(),
    )
    .expect("finite savings");
    println!("makespan gain: {} %   (paper: up to 18 %)", gains.pm(1));
    println!(
        "energy saving: {} %   (paper: ~12 % average)",
        savings.pm(1)
    );
    assert!(
        results
            .iter()
            .all(|r| r.makespan_gain_pct > 0.0 && r.energy_saving_pct > 0.0),
        "a seed inverted the headline ordering"
    );
    println!("ordering held for all {} seeds.", results.len());
}
