//! Fig. 6 — "Energy consumption (J)": total energy for each strategy ×
//! cloud, replaying the 10,000-VM adapted trace.

#![forbid(unsafe_code)]

use eavm_bench::chart::chart_of;
use eavm_bench::report::{grouped, pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig};

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let outcomes = p.run_matrix().expect("matrix");

    let mut t = Table::new(vec![
        "cloud",
        "strategy",
        "energy_J",
        "static_share",
        "vs FF (%)",
    ]);
    let mut ff_per_cloud = std::collections::HashMap::new();
    for o in &outcomes {
        if o.strategy == "FF" {
            ff_per_cloud.insert(o.cloud.clone(), o.energy.value());
        }
    }
    for o in &outcomes {
        let ff = ff_per_cloud[&o.cloud];
        t.row(vec![
            o.cloud.clone(),
            o.strategy.clone(),
            grouped(o.energy.value()),
            format!("{:.0}%", 100.0 * o.idle_energy_fraction()),
            format!("{:+.1}", pct_delta(ff, o.energy.value())),
        ]);
    }
    println!("{}", t.render());

    let rows: Vec<(String, f64)> = outcomes
        .iter()
        .map(|o| (format!("{}/{}", o.cloud, o.strategy), o.energy.value()))
        .collect();
    println!("{}", chart_of(&rows, 48, |v| format!("{:.0} MJ", v / 1e6)));

    // Headline claims to compare against the paper's Sect. IV-E.
    let find = |cloud: &str, strat: &str| {
        outcomes
            .iter()
            .find(|o| o.cloud == cloud && o.strategy == strat)
            .map(|o| o.energy.value())
            .expect("outcome present")
    };
    let pa1 = find("SMALLER", "PA-1");
    let pa0 = find("SMALLER", "PA-0");
    println!(
        "headline: PA-1 saves {:.1}% energy vs FF on the SMALLER cloud (paper: ~12% on average)",
        -pct_delta(ff_per_cloud["SMALLER"], pa1)
    );
    println!(
        "headline: the energy goal (PA-1) saves {:.1}% more than the performance goal (PA-0) \
         (paper: almost 3%)",
        -pct_delta(pa0, pa1)
    );
    println!(
        "headline: SMALLER-cloud FF consumes {:.1}% less energy than LARGER-cloud FF \
         (paper: SMALLER consumes less despite the longer makespan)",
        -pct_delta(find("LARGER", "FF"), find("SMALLER", "FF"))
    );
}
