//! Ablation: queue discipline — strict FIFO vs HPC-style backfilling.
//!
//! The paper's simulator implicitly queues requests a saturated cloud
//! cannot host. Under strict FIFO a blocked 4-VM request stalls
//! everything behind it even when single-VM fillers would fit; classic
//! batch schedulers backfill such holes. This ablation measures how much
//! of the FF/PROACTIVE gap is head-of-line blocking vs placement
//! quality.

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_simulator::Simulation;

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();

    let mut t = Table::new(vec![
        "strategy",
        "queue",
        "makespan_s",
        "energy_J",
        "sla_pct",
        "mean_wait_s",
    ]);
    let mut rows: Vec<(String, f64)> = Vec::new();
    for kind in [
        StrategyKind::Ff,
        StrategyKind::Pa(1.0),
        StrategyKind::Pa(0.0),
    ] {
        for queue in ["fifo", "backfill-32", "edf"] {
            let mut sim = Simulation::new(p.ground_truth.clone(), smaller.clone());
            match queue {
                "backfill-32" => sim = sim.with_backfill(32),
                "edf" => sim = sim.with_edf(),
                _ => {}
            }
            let mut strategy = p.strategy(kind);
            let out = sim.run(strategy.as_mut(), &p.requests).expect("run");
            t.row(vec![
                kind.label(),
                queue.to_string(),
                format!("{:.0}", out.makespan().value()),
                format!("{:.3e}", out.energy.value()),
                format!("{:.1}", out.sla_violation_pct()),
                format!("{:.0}", out.mean_wait_time().value()),
            ]);
            rows.push((
                format!("{}/{}", kind.label(), queue),
                out.makespan().value(),
            ));
        }
    }
    println!("{}", t.render());

    let find = |label: &str| rows.iter().find(|(l, _)| l == label).unwrap().1;
    println!(
        "backfilling shortens FF's makespan by {:.1}% and PA-0's by {:.1}% — the remaining \
         FF-vs-PA gap is placement quality, not queue discipline.",
        -pct_delta(find("FF/fifo"), find("FF/backfill-32")),
        -pct_delta(find("PA-0/fifo"), find("PA-0/backfill-32")),
    );
}
