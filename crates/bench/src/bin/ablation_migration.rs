//! Ablation: proactive allocation vs reactive migration.
//!
//! The paper's central motivation: a good application-centric proactive
//! allocation "can help ... minimize the energy costs by improving
//! resource utilization and by avoiding costly VM migrations". This
//! ablation quantifies that claim in two parts. First it gives the
//! profile-blind FIRST-FIT baseline a reactive consolidation sweep
//! (periodic live migration of straggler servers' VMs) and compares it
//! against PROACTIVE, which needs no migrations at all — at two load
//! levels, because reactive consolidation only has stragglers to
//! harvest when the fleet is under-loaded. Second it sweeps the
//! reactive regime's two knobs — sweep interval and drain threshold —
//! across a grid on the roomy fleet, charting the whole static-vs-
//! dynamic energy/SLA frontier that reactive consolidation can reach,
//! with the pre-copy cost model's traffic and downtime made explicit.

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_simulator::{CloudConfig, MigrationConfig, Simulation};
use eavm_types::Seconds;

/// Sweep intervals for the frontier grid (seconds between sweeps).
const INTERVALS: [f64; 3] = [150.0, 300.0, 600.0];

/// Drain thresholds for the frontier grid (max resident VMs on a donor).
const THRESHOLDS: [u32; 3] = [1, 2, 3];

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();
    // An over-provisioned fleet (2x the reference): FF leaves plenty of
    // straggler servers running.
    let roomy = CloudConfig::new("ROOMY", smaller.servers * 2).expect("cloud");

    let migration = MigrationConfig {
        receiver_bound: p.db.aux().os_bounds,
        ..Default::default()
    };

    let mut t = Table::new(vec![
        "cloud",
        "configuration",
        "makespan_s",
        "energy_J",
        "sla_pct",
        "migrations",
        "migrated_MB",
        "downtime_s",
        "powered_down",
    ]);

    for cloud in [&smaller, &roomy] {
        let ff = p.run(StrategyKind::Ff, cloud).expect("ff");
        let sim = Simulation::new(p.ground_truth.clone(), cloud.clone())
            .with_migration(migration.clone());
        let mut ff_strategy = p.strategy(StrategyKind::Ff);
        let ff_mig = sim.run(ff_strategy.as_mut(), &p.requests).expect("ff+mig");
        let pa = p.run(StrategyKind::Pa(1.0), cloud).expect("pa");

        for (name, out) in [
            ("FF (no migration)", &ff),
            ("FF + reactive migration", &ff_mig),
            ("PA-1 (proactive)", &pa),
        ] {
            t.row(vec![
                cloud.name.clone(),
                name.to_string(),
                format!("{:.0}", out.makespan().value()),
                format!("{:.3e}", out.energy.value()),
                format!("{:.1}", out.sla_violation_pct()),
                out.migrations.to_string(),
                format!("{:.0}", out.migrated_mb),
                format!("{:.1}", out.migration_downtime.value()),
                out.hosts_powered_down.to_string(),
            ]);
        }

        let delta = pct_delta(ff.energy.value(), ff_mig.energy.value());
        let verb = if delta < 0.0 { "saves" } else { "costs" };
        println!(
            "{}: reactive migration {verb} {:.1}% energy ({} migrations); \
             PROACTIVE saves {:.1}% with zero migrations",
            cloud.name,
            delta.abs(),
            ff_mig.migrations,
            -pct_delta(ff.energy.value(), pa.energy.value()),
        );
    }
    println!();
    println!("{}", t.render());

    // Static-vs-dynamic frontier: how far can the reactive regime's two
    // knobs push FF on the roomy fleet, and at what migration cost?
    // Every cell is FF + reactive consolidation with a different
    // (sweep interval, drain threshold) pair; the FF and PA-1 rows of
    // the table above are the static endpoints it is chasing.
    let ff_roomy = p.run(StrategyKind::Ff, &roomy).expect("ff roomy");
    let pa_roomy = p.run(StrategyKind::Pa(1.0), &roomy).expect("pa roomy");
    let mut f = Table::new(vec![
        "interval_s",
        "drain_vms",
        "energy_J",
        "energy_vs_FF_pct",
        "sla_pct",
        "migrations",
        "migrated_MB",
        "downtime_s",
        "powered_down",
    ]);
    let mut best = (0.0f64, INTERVALS[0], THRESHOLDS[0]);
    for interval in INTERVALS {
        for threshold in THRESHOLDS {
            let cfg = MigrationConfig {
                max_donor_vms: threshold,
                receiver_bound: p.db.aux().os_bounds,
                check_interval: Seconds(interval),
                ..Default::default()
            };
            let sim = Simulation::new(p.ground_truth.clone(), roomy.clone()).with_migration(cfg);
            let mut strategy = p.strategy(StrategyKind::Ff);
            let out = sim.run(strategy.as_mut(), &p.requests).expect("frontier");
            let delta = pct_delta(ff_roomy.energy.value(), out.energy.value());
            if delta < best.0 {
                best = (delta, interval, threshold);
            }
            f.row(vec![
                format!("{interval:.0}"),
                threshold.to_string(),
                format!("{:.3e}", out.energy.value()),
                format!("{delta:+.1}"),
                format!("{:.1}", out.sla_violation_pct()),
                out.migrations.to_string(),
                format!("{:.0}", out.migrated_mb),
                format!("{:.1}", out.migration_downtime.value()),
                out.hosts_powered_down.to_string(),
            ]);
        }
    }
    println!("frontier (ROOMY, FF + reactive consolidation, interval x drain threshold):");
    println!("{}", f.render());
    println!(
        "best reactive cell: interval={:.0}s drain<={} recovers {:.1}% energy; \
         PROACTIVE recovers {:.1}% with zero migration traffic",
        best.1,
        best.2,
        best.0.abs(),
        -pct_delta(ff_roomy.energy.value(), pa_roomy.energy.value()),
    );
    println!();
    println!(
        "reading: on the loaded reference cloud there are no stragglers worth harvesting,\n\
         so hundreds of degradation-budgeted migrations net out to ~zero; on the roomy\n\
         fleet the frontier sweep shows reactive consolidation recovering a little energy\n\
         at its best setting — paid for in gigabytes of pre-copy traffic and seconds of\n\
         cumulative downtime — while PROACTIVE placement beats every cell of the grid\n\
         without a single migration: the paper's argument for proactive\n\
         application-centric allocation, quantified."
    );
}
