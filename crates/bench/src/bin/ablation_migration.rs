//! Ablation: proactive allocation vs reactive migration.
//!
//! The paper's central motivation: a good application-centric proactive
//! allocation "can help ... minimize the energy costs by improving
//! resource utilization and by avoiding costly VM migrations". This
//! ablation quantifies that claim by giving the profile-blind FIRST-FIT
//! baseline a reactive consolidation sweep (periodic live migration of
//! straggler servers' VMs) and comparing it against PROACTIVE, which
//! needs no migrations at all — at two load levels, because reactive
//! consolidation only has stragglers to harvest when the fleet is
//! under-loaded.

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_simulator::{CloudConfig, MigrationConfig, Simulation};

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();
    // An over-provisioned fleet (2x the reference): FF leaves plenty of
    // straggler servers running.
    let roomy = CloudConfig::new("ROOMY", smaller.servers * 2).expect("cloud");

    let migration = MigrationConfig {
        receiver_bound: p.db.aux().os_bounds,
        ..Default::default()
    };

    let mut t = Table::new(vec![
        "cloud",
        "configuration",
        "makespan_s",
        "energy_J",
        "sla_pct",
        "migrations",
    ]);

    for cloud in [&smaller, &roomy] {
        let ff = p.run(StrategyKind::Ff, cloud).expect("ff");
        let sim = Simulation::new(p.ground_truth.clone(), cloud.clone())
            .with_migration(migration.clone());
        let mut ff_strategy = p.strategy(StrategyKind::Ff);
        let ff_mig = sim.run(ff_strategy.as_mut(), &p.requests).expect("ff+mig");
        let pa = p.run(StrategyKind::Pa(1.0), cloud).expect("pa");

        for (name, out) in [
            ("FF (no migration)", &ff),
            ("FF + reactive migration", &ff_mig),
            ("PA-1 (proactive)", &pa),
        ] {
            t.row(vec![
                cloud.name.clone(),
                name.to_string(),
                format!("{:.0}", out.makespan().value()),
                format!("{:.3e}", out.energy.value()),
                format!("{:.1}", out.sla_violation_pct()),
                out.migrations.to_string(),
            ]);
        }

        let delta = pct_delta(ff.energy.value(), ff_mig.energy.value());
        let verb = if delta < 0.0 { "saves" } else { "costs" };
        println!(
            "{}: reactive migration {verb} {:.1}% energy ({} migrations); \
             PROACTIVE saves {:.1}% with zero migrations",
            cloud.name,
            delta.abs(),
            ff_mig.migrations,
            -pct_delta(ff.energy.value(), pa.energy.value()),
        );
    }
    println!();
    println!("{}", t.render());
    println!(
        "reading: on the loaded reference cloud there are no stragglers worth harvesting,\n\
         so hundreds of degradation-budgeted migrations net out to ~zero; on the roomy\n\
         fleet they recover a little energy — but PROACTIVE placement beats both regimes\n\
         by an order of magnitude more, without a single migration: the paper's argument\n\
         for proactive application-centric allocation, quantified."
    );
}
