//! Table II — "Summary of the information stored in the database": build
//! the full model database (base + exhaustive combined tests, noisy
//! Watts Up?-metered) and print its schema, size accounting (the paper's
//! experiment-count formula), and a sample of registers in CSV form.

#![forbid(unsafe_code)]

use eavm_benchdb::{combined::expected_combined_count, DbBuilder, DbRecord};
use eavm_types::MixVector;

fn main() {
    let builder = DbBuilder::default();
    let db = builder.build().expect("database build");
    let aux = db.aux();

    println!("# Table II schema (CSV, sorted ascending by (Ncpu,Nmem,Nio); binary-searched):");
    println!("{}", DbRecord::CSV_HEADER);
    println!();

    println!("# auxiliary file (Table I parameters):");
    print!("{}", aux.to_text());
    println!();

    let bounds = aux.os_bounds;
    let combined = expected_combined_count(bounds);
    println!(
        "# size: {} registers = 3 types x {} base tests + {} combined tests",
        db.len(),
        builder.max_base_vms,
        combined
    );
    println!(
        "# paper formula: (OSC+1)(OSM+1)(OSI+1) - (1+OSC+OSM+OSI) = ({}+1)({}+1)({}+1) - (1+{}+{}+{}) = {}",
        bounds.cpu, bounds.mem, bounds.io, bounds.cpu, bounds.mem, bounds.io, combined
    );
    println!();

    println!("# sample registers:");
    for mix in [
        MixVector::new(1, 0, 0),
        MixVector::new(9, 0, 0),
        MixVector::new(0, 4, 0),
        MixVector::new(0, 0, 7),
        MixVector::new(1, 1, 1),
        MixVector::new(4, 2, 3),
        bounds,
    ] {
        if let Some(r) = db.lookup(mix) {
            println!("{}", r.to_csv());
        }
    }
}
