//! Fig. 4 — "Possible VM allocation outcome over time": the
//! interval-weighted execution-time and energy arithmetic, checked
//! against the paper's worked example and then demonstrated live on the
//! simulator.
//!
//! Paper text: "the execution time of VM1 will be computed considering
//! the relative weight of each allocation (70% of allocation A and 30% of
//! allocation B) as follows: ExecTime_VM1 = 0.7*1200s + 0.3*1800s = 1380s
//! and the energy consumption for the whole outcome will be: Energy =
//! 0.35*15KJ + 0.15*20KJ + 0.5*12KJ = 14.25KJ."

#![forbid(unsafe_code)]

use eavm_core::estimate::{weighted_energy, weighted_exec_time};
use eavm_core::{AllocationModel, AnalyticModel, FirstFit};
use eavm_simulator::{CloudConfig, Simulation};
use eavm_swf::{Priority, VmRequest};
use eavm_types::{JobId, Joules, MixVector, Seconds, WorkloadType};

fn main() {
    // Part 1: the paper's worked example, verbatim.
    let exec = weighted_exec_time(&[(0.7, Seconds(1200.0)), (0.3, Seconds(1800.0))]).unwrap();
    let energy = weighted_energy(&[
        (0.35, Joules(15_000.0)),
        (0.15, Joules(20_000.0)),
        (0.5, Joules(12_000.0)),
    ])
    .unwrap();
    println!("paper example:");
    println!("  ExecTime_VM1 = 0.7*1200s + 0.3*1800s = {:.0}", exec);
    println!(
        "  Energy = 0.35*15kJ + 0.15*20kJ + 0.5*12kJ = {:.2} kJ",
        energy.kilojoules()
    );
    assert_eq!(exec, Seconds(1380.0));
    assert!((energy.kilojoules() - 14.25).abs() < 1e-9);
    println!("  (both match the paper exactly)");
    println!();

    // Part 2: the same arithmetic emerging from the simulator. VM1 (CPU)
    // starts alone (allocation A); VM2 (IO) joins mid-run (allocation B).
    let model = AnalyticModel::reference();
    let t_a = model
        .exec_time(MixVector::new(1, 0, 0), WorkloadType::Cpu)
        .unwrap();
    let t_b = model
        .exec_time(MixVector::new(1, 0, 1), WorkloadType::Cpu)
        .unwrap();

    let join_at = 400.0;
    let reqs = vec![
        VmRequest {
            id: JobId::new(0),
            submit: Seconds(0.0),
            workload: WorkloadType::Cpu,
            vm_count: 1,
            deadline: Seconds(1e9),
            priority: Priority::Standard,
        },
        VmRequest {
            id: JobId::new(1),
            submit: Seconds(join_at),
            workload: WorkloadType::Io,
            vm_count: 1,
            deadline: Seconds(1e9),
            priority: Priority::Standard,
        },
    ];
    let sim = Simulation::new(model.clone(), CloudConfig::new("FIG4", 1).unwrap()).with_timeline();
    let out = sim.run(&mut FirstFit::ff(4), &reqs).unwrap();

    // Render the Fig. 4 allocation-outcome diagram from the recorded
    // timeline: each interval of constant allocation on server 0.
    println!("live demonstration (one server, VM2 joins at t={join_at}s):");
    println!("  allocation A = (1,0,0): ExecTime_cpu = {:.0}", t_a);
    println!("  allocation B = (1,0,1): ExecTime_cpu = {:.0}", t_b);
    println!();
    println!("  server srv0 allocation outcome over time (the Fig. 4 diagram):");
    let tl = out.timeline_of(eavm_types::ServerId::new(0));
    let span = out.makespan().value();
    for iv in &tl {
        let width = 40.0 * iv.duration().value() / span;
        let bar: String = std::iter::repeat_n('#', width.round().max(1.0) as usize).collect();
        println!(
            "    [{:>6.0} - {:>6.0} s] {:<42} mix {}",
            iv.start.value(),
            iv.end.value(),
            bar,
            iv.mix
        );
    }

    // VM1 (the CPU VM) finishes when the mix loses its CPU component:
    // the end of the last interval with Ncpu = 1.
    let vm1_finish = tl
        .iter()
        .filter(|iv| iv.mix.cpu == 1)
        .map(|iv| iv.end.value())
        .fold(0.0f64, f64::max);
    // Interval-weighted prediction from the recorded intervals, exactly
    // the Fig. 4 formula: sum over intervals of weight x per-allocation
    // execution time, with weights = interval share of VM1's work.
    let weighted: f64 = tl
        .iter()
        .filter(|iv| iv.mix.cpu == 1)
        .map(|iv| {
            let t_alloc = model.exec_time(iv.mix, WorkloadType::Cpu).unwrap().value();
            (iv.duration().value() / t_alloc, t_alloc)
        })
        .map(|(w, t_alloc)| w * t_alloc)
        .sum();
    println!();
    println!("  VM1 realized execution time: {vm1_finish:.1} s");
    println!("  interval-weighted reconstruction: {weighted:.1} s");
    assert!(
        (vm1_finish - weighted).abs() < 1e-6,
        "Fig. 4 identity broken"
    );
    assert!(
        vm1_finish > t_a.value() - 1e-9 && vm1_finish < t_b.value() + 1e-9,
        "VM1's time must interpolate between the pure-A and pure-B projections"
    );
    println!(
        "  bounded by the pure-A ({:.0}) and pure-B ({:.0}) projections, as Fig. 4 requires",
        t_a, t_b
    );
}
