//! Fig. 2 — "Execution times of the FFTW benchmark": average execution
//! time per VM as the number of co-located VMs grows from 1 to 16.
//!
//! The paper's observations to reproduce: the shortest average execution
//! time occurs around 9 VMs, and "with more than 11 VMs the average
//! execution time increases significantly", approaching the sequential
//! average (the solo runtime).

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_testbed::{ApplicationProfile, RunSimulator};

fn main() {
    let sim = RunSimulator::reference();
    let fftw = ApplicationProfile::fftw();

    let mut table = Table::new(vec![
        "n_vms",
        "total_time_s",
        "avg_time_per_vm_s",
        "energy_kj",
        "energy_per_vm_kj",
    ]);
    let mut best = (0u32, f64::INFINITY);
    let mut curve = Vec::new();
    for n in 1..=16u32 {
        let out = sim.run_clones(&fftw, n as usize, None);
        let avg = out.avg_time_per_vm().value();
        if avg < best.1 {
            best = (n, avg);
        }
        curve.push(avg);
        table.row(vec![
            n.to_string(),
            format!("{:.0}", out.makespan.value()),
            format!("{:.1}", avg),
            format!("{:.1}", out.energy_true.kilojoules()),
            format!("{:.1}", out.energy_true.kilojoules() / n as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "optimal scenario (shortest average execution time): {} VMs at {:.1} s/VM",
        best.0, best.1
    );
    println!(
        "degradation past 11 VMs: avg(12)/avg({}) = {:.2}x, avg(16)/solo = {:.2}",
        best.0,
        curve[11] / best.1,
        curve[15] / fftw.base_runtime.value(),
    );
}
