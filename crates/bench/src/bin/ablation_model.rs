//! Ablation: what knowledge does the PROACTIVE allocator need?
//!
//! Compares three allocator-side models on the same trace and cloud:
//!
//! * `DbModel` — the paper's CSV lookup table (noisy-metered).
//! * `LearnedModel` — a quadratic+hinge regression fitted to the table
//!   (the paper's machine-learning future-work item).
//! * `AnalyticModel` — oracle access to the simulator's ground truth
//!   (upper bound: a perfect model).

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_bench::{Pipeline, PipelineConfig};
use eavm_core::learned::LearnedModel;
use eavm_core::{AnalyticModel, DbModel, OptimizationGoal, Proactive};
use eavm_types::MixVector;

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();
    let goal = OptimizationGoal::BALANCED;
    let margin = p.config.qos_margin;

    let mut t = Table::new(vec![
        "allocator model",
        "makespan_s",
        "energy_J",
        "sla_pct",
        "mean_wait_s",
    ]);

    let mut row = |name: &str, out: eavm_simulator::SimOutcome| {
        t.row(vec![
            name.to_string(),
            format!("{:.0}", out.makespan().value()),
            format!("{:.3e}", out.energy.value()),
            format!("{:.1}", out.sla_violation_pct()),
            format!("{:.0}", out.mean_wait_time().value()),
        ]);
    };

    // 1. Table lookup (the paper's configuration).
    let mut pa_db =
        Proactive::new(DbModel::new(p.db.clone()), goal, p.deadlines).with_qos_margin(margin);
    row(
        "db-lookup",
        p.run_custom(&mut pa_db, &smaller).expect("db run"),
    );

    // 2. Learned regression surrogate.
    let learned = LearnedModel::fit(&p.db).expect("fit");
    println!(
        "# learned model: time R^2 = {:?}, energy R^2 = {:.3}, 5-fold CV mean rel. error = {:.3}",
        learned.time_r2().map(|r| (r * 1000.0).round() / 1000.0),
        learned.energy_r2(),
        LearnedModel::cross_validate(&p.db, 5).expect("cv")
    );
    let mut pa_ml = Proactive::new(learned, goal, p.deadlines).with_qos_margin(margin);
    row(
        "learned-regression",
        p.run_custom(&mut pa_ml, &smaller).expect("ml run"),
    );

    // 3. Oracle (analytic ground truth), bounded to the same hostable grid
    //    so the comparison isolates estimation error, not search space.
    let mut oracle = AnalyticModel::reference();
    oracle = eavm_core::AnalyticModel::new(
        oracle.server().clone(),
        eavm_testbed::ContentionModel::default(),
        &eavm_testbed::BenchmarkSuite::standard(),
        MixVector::new(
            p.db.aux().os_bounds.cpu,
            p.db.aux().os_bounds.mem,
            p.db.aux().os_bounds.io,
        ),
    );
    let mut pa_oracle = Proactive::new(oracle, goal, p.deadlines).with_qos_margin(margin);
    row(
        "oracle-analytic",
        p.run_custom(&mut pa_oracle, &smaller).expect("oracle run"),
    );

    println!("{}", t.render());
    println!(
        "reading: lookup vs oracle gap isolates meter noise; lookup vs learned gap \
         isolates regression error (largest at the RAM-oversubscription cliff)."
    );
}
