//! Ablation: allocation scope — per-request vs burst-level.
//!
//! The paper allocates per job request but describes workloads as
//! "scientific HPC workflows, which are composed of sets of jobs with
//! the same resource requirements" arriving in bursts of 1–5 requests.
//! Burst-level allocation hands the PROACTIVE partition search the whole
//! burst at once (a strictly larger brute-force space, still enumerated
//! with Orlov's generator), at the price of head-of-line granularity.
//! Also compares the BEST-FIT baseline against FIRST-FIT.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_core::{BestFit, OptimizationGoal, Proactive};
use eavm_simulator::Simulation;

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();

    let mut t = Table::new(vec![
        "configuration",
        "makespan_s",
        "energy_J",
        "sla_pct",
        "peak_busy",
    ]);
    let mut push = |name: &str, out: eavm_simulator::SimOutcome| {
        t.row(vec![
            name.to_string(),
            format!("{:.0}", out.makespan().value()),
            format!("{:.3e}", out.energy.value()),
            format!("{:.1}", out.sla_violation_pct()),
            out.peak_servers_busy.to_string(),
        ]);
    };

    // Per-request PROACTIVE (the paper's configuration).
    push(
        "PA-0.5 per-request",
        p.run(StrategyKind::Pa(0.5), &smaller).expect("per-request"),
    );

    // Burst-level PROACTIVE.
    let sim = Simulation::new(p.ground_truth.clone(), smaller.clone()).with_burst_allocation();
    let mut pa = Proactive::new(
        eavm_core::DbModel::new(p.db.clone()),
        OptimizationGoal::BALANCED,
        p.deadlines,
    )
    .with_qos_margin(p.config.qos_margin);
    push(
        "PA-0.5 burst-level",
        sim.run(&mut pa, &p.requests).expect("burst"),
    );

    // Count-based baselines: first fit vs best fit.
    push(
        "FF  (first fit)",
        p.run(StrategyKind::Ff, &smaller).expect("ff"),
    );
    let cpu_slots = p.ground_truth.server().cpu_slots();
    let mut bf = BestFit::bf(cpu_slots);
    push(
        "BF  (best fit)",
        p.run_custom(&mut bf, &smaller).expect("bf"),
    );
    let mut bf2 = BestFit::with_multiplex(cpu_slots, 2);
    push("BF-2", p.run_custom(&mut bf2, &smaller).expect("bf2"));

    println!("{}", t.render());
}
