//! Fig. 3 — "VM allocation algorithm": the control-flow diagram,
//! reproduced as an executed walkthrough. One job request flows through
//! the algorithm's stages — partition generation (Orlov), per-block
//! placement against the database, QoS filtering, and goal ranking —
//! with every candidate's working data printed, for each optimization
//! goal.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_benchdb::DbBuilder;
use eavm_core::strategy::{RequestView, ServerView};
use eavm_core::{DbModel, OptimizationGoal, Proactive};
use eavm_types::{JobId, MixVector, Seconds, ServerId, WorkloadType};

fn main() {
    // Inputs, per the paper: (i) the model database, (ii) the auxiliary
    // parameters, (iii) the VM set + profile + QoS, (iv) the goal α.
    println!("== inputs ==");
    let db = DbBuilder::default().build().expect("database");
    println!(
        "(i)   model database: {} registers, bounds {}",
        db.len(),
        db.aux().os_bounds
    );
    println!(
        "(ii)  auxiliary parameters: OSP={} OSE={}",
        db.aux().os_perf,
        db.aux().os_energy
    );

    let request = RequestView {
        id: JobId::new(7),
        workload: WorkloadType::Cpu,
        vm_count: 4,
        deadline: Seconds(3600.0),
    };
    println!(
        "(iii) VM set: {} x {} VMs, deadline {}",
        request.vm_count, request.workload, request.deadline
    );

    // Fleet snapshot: one partly loaded server, one mixed, two off.
    let servers = vec![
        ServerView::homogeneous(ServerId::new(0), MixVector::new(5, 0, 0)),
        ServerView::homogeneous(ServerId::new(1), MixVector::new(1, 1, 1)),
        ServerView::homogeneous(ServerId::new(2), MixVector::EMPTY),
        ServerView::homogeneous(ServerId::new(3), MixVector::EMPTY),
    ];
    println!("fleet: srv0=(5,0,0)  srv1=(1,1,1)  srv2=()  srv3=()");

    for alpha in [1.0, 0.0, 0.5] {
        let goal = OptimizationGoal::new(alpha).unwrap();
        println!(
            "\n== (iv) goal {} — partition search and ranking ==",
            goal.label()
        );
        let deadlines = [Seconds(3600.0), Seconds(3000.0), Seconds(2700.0)];
        let pa = Proactive::new(DbModel::new(db.clone()), goal, deadlines).with_qos_margin(0.65);
        let candidates = pa.explain(&request, &servers).expect("explain");

        let mut t = Table::new(vec![
            "partition",
            "placements",
            "energy_kJ",
            "time_s",
            "score",
            "chosen",
        ]);
        for c in &candidates {
            let blocks: Vec<String> = c.blocks.iter().map(|b| b.total().to_string()).collect();
            let placements: Vec<String> = c
                .placements
                .iter()
                .map(|p| format!("{}->{}", p.add.total(), p.server))
                .collect();
            t.row(vec![
                blocks.join("+"),
                placements.join(" "),
                format!("{:.0}", c.energy.kilojoules()),
                format!("{:.0}", c.time.value()),
                format!("{:.3}", c.score),
                if c.chosen {
                    "  <-- allocate".to_string()
                } else {
                    String::new()
                },
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Each row is one set partition of the request's VMs (Orlov's generator, multiset\n\
         fast path); placements are the greedy per-block choices; the goal ranks the\n\
         normalized (energy, time) pairs and ties keep the first server of the list —\n\
         exactly the loop of the paper's Fig. 3."
    );
}
