//! Overload-control sweep: flash crowds from 0.5x to 4x fleet capacity
//! against the adaptive admission plane (`eavm-overload`).
//!
//! A 2-shard, 4-server fleet (per-server CPU bound 10 ⇒ 40 single-VM
//! slots) receives a paced crowd of `multiplier x capacity` one-VM CPU
//! requests at a fixed 5-virtual-second arrival gap, mixed 9:4:2
//! Batch:Standard:Interactive. The overload plane runs with the same
//! regime the acceptance tests pin: AIMD ceiling 12 VMs/shard, 32-slot
//! park queue, generous queue aging. Per offered load the sweep reports
//! total and per-class goodput, the shed breakdown, p99 admission
//! latency, and the final AIMD limits. Usage:
//!
//! ```text
//! overload_shed [multipliers,comma-separated]
//! ```

#![forbid(unsafe_code)]

use eavm_benchdb::DbBuilder;
use eavm_overload::{OverloadConfig, Priority};
use eavm_service::{replay_online_paced, ServiceConfig};
use eavm_swf::VmRequest;
use eavm_types::{JobId, Seconds, WorkloadType};

/// Fleet shape shared by every run in the sweep.
const SHARDS: usize = 2;
const SERVERS_PER_SHARD: usize = 4;
/// Per-server CPU OS bound of the exact database is 10 VMs.
const CAPACITY: usize = 40;

/// 9:4:2 Batch:Standard:Interactive, interleaved so every class keeps
/// arriving for the whole crowd (same pattern as the acceptance test).
const PATTERN: [Priority; 15] = [
    Priority::Batch,
    Priority::Batch,
    Priority::Interactive,
    Priority::Batch,
    Priority::Batch,
    Priority::Standard,
    Priority::Batch,
    Priority::Batch,
    Priority::Standard,
    Priority::Batch,
    Priority::Batch,
    Priority::Interactive,
    Priority::Batch,
    Priority::Standard,
    Priority::Standard,
];

fn crowd(offered: usize) -> Vec<VmRequest> {
    (0..offered)
        .map(|i| VmRequest {
            id: JobId::new(i as u32),
            submit: Seconds(i as f64 * 5.0),
            workload: WorkloadType::Cpu,
            vm_count: 1,
            deadline: Seconds(1e7),
            priority: PATTERN[i % PATTERN.len()],
        })
        .collect()
}

fn config() -> ServiceConfig {
    let mut config = ServiceConfig::new(SHARDS, SERVERS_PER_SHARD);
    config.queue_capacity = 32;
    config.deadlines = [Seconds(1e7), Seconds(1e7), Seconds(1e7)];
    config.overload = Some(OverloadConfig {
        max_limit: 12.0,
        queue_target: 7200.0,
        queue_interval: 7200.0,
        ..OverloadConfig::default()
    });
    config
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let multipliers: Vec<f64> = args
        .get(1)
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![0.5, 1.0, 2.0, 3.0, 4.0]);

    let db = DbBuilder::exact().build().expect("model database");
    println!(
        "# overload_shed: {SHARDS} shards x {SERVERS_PER_SHARD} servers \
         ({CAPACITY} single-VM CPU slots), 5 s arrival gap, 9:4:2 B:S:I"
    );
    println!(
        "{:<6} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>9} {:>6} {:>7} {:>7} {:>12}",
        "xcap",
        "offered",
        "admitted",
        "good%",
        "batch%",
        "std%",
        "inter%",
        "brownout",
        "aged",
        "q_full",
        "p99_us",
        "final_limits"
    );
    for &multiplier in &multipliers {
        let offered = (CAPACITY as f64 * multiplier).round() as usize;
        let requests = crowd(offered);
        let report =
            replay_online_paced(&db, config(), &requests).expect("paced overloaded replay");
        let stats = &report.stats;
        let admitted: u64 = stats.admitted_class.iter().sum();
        let goodput = |class: Priority| {
            let sub = stats.submitted_class[class.index()];
            if sub == 0 {
                return 100.0;
            }
            100.0 * stats.admitted_class[class.index()] as f64 / sub as f64
        };
        let limits: Vec<String> = stats
            .overload
            .as_ref()
            .map(|s| s.limits.iter().map(|l| format!("{l:.0}")).collect())
            .unwrap_or_default();
        println!(
            "{:<6.2} {:>7} {:>9} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9} {:>6} {:>7} {:>7} {:>12}",
            multiplier,
            offered,
            admitted,
            100.0 * admitted as f64 / offered.max(1) as f64,
            goodput(Priority::Batch),
            goodput(Priority::Standard),
            goodput(Priority::Interactive),
            stats.shed_brownout_class,
            stats.shed_queue_aged,
            stats.shed_wait_queue,
            stats.admission_latency_us.p99,
            limits.join("/"),
        );
    }
}
