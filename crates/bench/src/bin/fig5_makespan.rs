//! Fig. 5 — "Makespan (s)": workload execution time for FF, FF-2, FF-3,
//! PA-1, PA-0 and PA-0.5 on the SMALLER and LARGER clouds, replaying the
//! 10,000-VM adapted trace.

#![forbid(unsafe_code)]

use eavm_bench::chart::chart_of;
use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig};

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    eprintln!(
        "trace: {} requests, {} VMs; clouds: {:?}",
        p.requests.len(),
        p.total_vms(),
        p.clouds()
    );

    let outcomes = p.run_matrix().expect("matrix");
    let mut t = Table::new(vec!["cloud", "strategy", "makespan_s", "vs FF (%)"]);
    let mut ff_per_cloud = std::collections::HashMap::new();
    for o in &outcomes {
        if o.strategy == "FF" {
            ff_per_cloud.insert(o.cloud.clone(), o.makespan().value());
        }
    }
    for o in &outcomes {
        let ff = ff_per_cloud[&o.cloud];
        t.row(vec![
            o.cloud.clone(),
            o.strategy.clone(),
            format!("{:.0}", o.makespan().value()),
            format!("{:+.1}", pct_delta(ff, o.makespan().value())),
        ]);
    }
    println!("{}", t.render());

    let rows: Vec<(String, f64)> = outcomes
        .iter()
        .map(|o| (format!("{}/{}", o.cloud, o.strategy), o.makespan().value()))
        .collect();
    println!("{}", chart_of(&rows, 48, |v| format!("{v:.0} s")));

    let best_pa = outcomes
        .iter()
        .filter(|o| o.cloud == "SMALLER" && o.strategy.starts_with("PA"))
        .map(|o| o.makespan().value())
        .fold(f64::INFINITY, f64::min);
    println!(
        "headline: PROACTIVE shortens the SMALLER-cloud makespan by {:.1}% vs FF \
         (paper: up to 18% shorter execution times)",
        -pct_delta(ff_per_cloud["SMALLER"], best_pa)
    );
}
