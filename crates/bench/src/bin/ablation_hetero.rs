//! Ablation: heterogeneous server hardware (the paper's future-work
//! item i).
//!
//! The full heterogeneous allocator needs per-platform databases ("if
//! multiple server configurations are used, we should include system
//! characteristics such as number of CPUs, amount of memory, ..."). As a
//! first step, this ablation re-runs the base tests and the consolidation
//! optima on a second server type (a dual-socket "big node") to show how
//! the Table I parameters shift with the platform — the data a
//! heterogeneity-aware PROACTIVE would key on.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_benchdb::BaseTests;
use eavm_testbed::{BenchmarkSuite, ContentionModel, RunSimulator, ServerSpec};
use eavm_types::WorkloadType;

fn base_for(server: ServerSpec) -> (String, BaseTests) {
    let name = server.name.clone();
    let sim = RunSimulator {
        server,
        model: ContentionModel::default(),
    };
    let suite = BenchmarkSuite::standard();
    let tests = BaseTests::run(
        &sim,
        [
            suite.representative(WorkloadType::Cpu),
            suite.representative(WorkloadType::Mem),
            suite.representative(WorkloadType::Io),
        ],
        24,
        None,
    );
    (name, tests)
}

fn main() {
    let mut t = Table::new(vec![
        "server", "OSPC", "OSPM", "OSPI", "OSEC", "OSEM", "OSEI", "peak_W",
    ]);
    for server in [ServerSpec::reference_rack_server(), ServerSpec::big_node()] {
        let peak = server.peak_power_watts();
        let (name, base) = base_for(server);
        let p = base.os_perf();
        let e = base.os_energy();
        t.row(vec![
            name,
            p.cpu.to_string(),
            p.mem.to_string(),
            p.io.to_string(),
            e.cpu.to_string(),
            e.mem.to_string(),
            e.io.to_string(),
            format!("{peak:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: the big node consolidates roughly twice as many VMs per type before \
         its optima — per-platform Table I parameters are exactly the database extension \
         the paper's heterogeneous future work calls for."
    );
}
