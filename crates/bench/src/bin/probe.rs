//! Calibration probe: run the strategy × cloud matrix at reduced scale
//! and print the headline comparisons. Not part of the published
//! experiment set; used to tune pipeline constants.

#![forbid(unsafe_code)]

use eavm_bench::report::Table;
use eavm_bench::{Pipeline, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total_vms: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let smaller: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(26);
    let gap: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(90.0);
    let qos: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(3.0);
    let margin: f64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(0.65);

    let cfg = PipelineConfig {
        total_vms,
        smaller_servers: smaller,
        mean_burst_gap_s: gap,
        qos_factor: qos,
        qos_margin: margin,
        ..Default::default()
    };
    eprintln!("building pipeline: {cfg:?}");
    let p = Pipeline::build(cfg).unwrap();
    eprintln!(
        "requests={} vms={} deadlines={:?} bounds={}",
        p.requests.len(),
        p.total_vms(),
        p.deadlines,
        p.db.aux().os_bounds
    );

    let mut t = Table::new(vec![
        "cloud",
        "strategy",
        "makespan_s",
        "energy_MJ",
        "sla_pct",
        "peak_busy",
        "mean_wait_s",
    ]);
    let start = std::time::Instant::now();
    for out in p.run_matrix().unwrap() {
        t.row(vec![
            out.cloud.clone(),
            out.strategy.clone(),
            format!("{:.0}", out.makespan().value()),
            format!("{:.2}", out.energy.value() / 1e6),
            format!("{:.1}", out.sla_violation_pct()),
            format!("{}", out.peak_servers_busy),
            format!("{:.0}", out.mean_wait_time().value()),
        ]);
    }
    println!("{}", t.render());
    eprintln!("matrix wall time: {:.1}s", start.elapsed().as_secs_f64());
}
