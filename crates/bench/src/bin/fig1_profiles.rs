//! Fig. 1 — "Sub-system utilization over time for a CPU-intensive
//! workload (left) and a CPU- cum network-intensive workload (right)".
//!
//! Prints two CSV series (one per workload) of 1 Hz subsystem
//! utilization, downsampled for readability, followed by the
//! classification each trace yields under the paper's
//! "significant average demand" rule.

#![forbid(unsafe_code)]

use eavm_testbed::{ApplicationProfile, ClassificationRule, Profiler, ServerSpec, Subsystem};

fn emit(profiler: &mut Profiler, app: &ApplicationProfile, stride: usize) {
    println!("# workload: {} (declared class: {})", app.name, app.class);
    println!("time_s,cpu_pct,mem_pct,disk_pct,net_pct");
    let samples = profiler.profile(app);
    for s in samples.iter().step_by(stride) {
        println!(
            "{:.0},{:.1},{:.1},{:.1},{:.1}",
            s.time.value(),
            100.0 * s.util[Subsystem::Cpu],
            100.0 * s.util[Subsystem::Mem],
            100.0 * s.util[Subsystem::Disk],
            100.0 * s.util[Subsystem::Net],
        );
    }
    let avg = Profiler::average(&samples);
    let class = ClassificationRule::default().classify(&avg);
    let intensive: Vec<&str> = class.intensive.iter().map(|s| s.name()).collect();
    println!(
        "# classification: intensive along [{}], database label: {}",
        intensive.join(", "),
        class.primary
    );
    println!();
}

fn main() {
    let mut profiler = Profiler::reference(0xF161);
    // Left panel: the CPU-intensive workload.
    emit(&mut profiler, &ApplicationProfile::fftw(), 20);
    // Right panel: the CPU- cum network-intensive workload.
    emit(&mut profiler, &ApplicationProfile::mpi_compute_comm(), 20);

    let server = ServerSpec::reference_rack_server();
    println!(
        "# server: {} ({} cores, {:.0} MB RAM)",
        server.name,
        server.cpu_slots(),
        server.ram_mb
    );
}
