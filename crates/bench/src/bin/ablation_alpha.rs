//! Ablation: the α sweep.
//!
//! The paper evaluates α ∈ {0, 0.5, 1} and notes that "other possible
//! configurations of the PROACTIVE strategy (e.g., α=0.75)" did not vary
//! the results significantly. This sweep quantifies that claim on the
//! SMALLER cloud.

#![forbid(unsafe_code)]

use eavm_bench::report::{pct_delta, Table};
use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};

fn main() {
    let p = Pipeline::build(PipelineConfig::default()).expect("pipeline");
    let (smaller, _) = p.clouds();

    let mut t = Table::new(vec!["alpha", "makespan_s", "energy_J", "sla_pct"]);
    let mut results = Vec::new();
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let out = p.run(StrategyKind::Pa(alpha), &smaller).expect("run");
        t.row(vec![
            format!("{alpha}"),
            format!("{:.0}", out.makespan().value()),
            format!("{:.3e}", out.energy.value()),
            format!("{:.1}", out.sla_violation_pct()),
        ]);
        results.push((alpha, out));
    }
    println!("{}", t.render());

    let (e_min, e_max) = results
        .iter()
        .map(|(_, o)| o.energy.value())
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), e| {
            (lo.min(e), hi.max(e))
        });
    let (m_min, m_max) = results
        .iter()
        .map(|(_, o)| o.makespan().value())
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), m| {
            (lo.min(m), hi.max(m))
        });
    println!(
        "spread across alpha: energy {:.1}%, makespan {:.1}% \
         (paper: intermediate alphas \"not significant enough\", <2-3%)",
        pct_delta(e_min, e_max),
        pct_delta(m_min, m_max)
    );
}
