//! Small descriptive-statistics helpers for multi-seed experiment
//! summaries (mean, population standard deviation, median, min/max).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Median (mean of the middle pair for even sizes).
    pub median: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty sample. Returns `None` for an empty slice or
    /// any non-finite observation.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() || xs.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            median,
            min: sorted[0],
            max: sorted[n - 1],
        })
    }

    /// `mean ± std` rendered with the given precision.
    pub fn pm(&self, precision: usize) -> String {
        format!("{:.precision$} ± {:.precision$}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_a_simple_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12); // classic example
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn odd_sample_median_is_middle_element() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn singleton_has_zero_std() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn pm_renders_mean_and_std() {
        let s = Summary::of(&[1.0, 3.0]).unwrap();
        assert_eq!(s.pm(1), "2.0 ± 1.0");
    }
}
