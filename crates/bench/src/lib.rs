//! # eavm-bench
//!
//! Experiment harness regenerating **every table and figure** of the
//! paper's evaluation, plus ablations. Each `src/bin/*.rs` binary prints
//! one artifact:
//!
//! | binary             | artifact |
//! |--------------------|----------|
//! | `fig1_profiles`    | Fig. 1 — subsystem utilization over time (CPU-intensive; CPU+network) |
//! | `fig2_fftw`        | Fig. 2 — FFTW average execution time vs #VMs |
//! | `table1_base`      | Table I — OSP/OSE/T per workload type |
//! | `table2_database`  | Table II — model-database schema + sample registers |
//! | `fig3_flow`        | Fig. 3 — executed partition-search walkthrough per goal |
//! | `fig4_intervals`   | Fig. 4 — interval-weighted worked example |
//! | `fig5_makespan`    | Fig. 5 — makespan per strategy × cloud |
//! | `fig6_energy`      | Fig. 6 — energy per strategy × cloud |
//! | `fig7_sla`         | Fig. 7 — % SLA violations per strategy × cloud |
//! | `all_experiments`  | everything above + headline-claim summary |
//! | `ablation_alpha`   | α sweep (incl. 0.75, which the paper reports as insignificant) |
//! | `ablation_model`   | DB lookup vs learned-regression allocator model |
//! | `ablation_fleet`   | busy-only vs always-on fleet power accounting |
//! | `ablation_scope`   | per-request vs burst-level allocation; best-fit baselines |
//! | `ablation_thermal` | RC thermal model vs consolidation depth |
//! | `ablation_migration` | reactive live migration vs proactive placement |
//! | `ablation_backfill` | FIFO vs backfilling queue discipline |
//! | `ablation_hetero`  | Table I parameters per server platform |
//! | `hetero_fleet`     | mixed-hardware fleet, naive vs platform-aware PROACTIVE |
//! | `seed_sweep`       | headline numbers across 5 trace seeds (mean ± std) |
//! | `probe`            | calibration probe (scale/load/QoS knobs via argv) |
//!
//! The library half hosts the shared [`pipeline`] (model building, trace
//! synthesis/cleaning/adaptation, simulation driving) and [`report`]
//! (fixed-width table rendering) so binaries stay thin.

#![forbid(unsafe_code)]

pub mod chart;
pub mod pipeline;
pub mod report;
pub mod stats;

pub use pipeline::{Pipeline, PipelineConfig, StrategyKind};
