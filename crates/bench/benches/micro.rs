//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! set-partition enumeration (Orlov), model-database lookup/estimation,
//! one PROACTIVE allocation decision at datacenter fleet width, the
//! single-server run integrator, and an end-to-end small simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use eavm_bench::{Pipeline, PipelineConfig, StrategyKind};
use eavm_benchdb::{DbBuilder, ModelDatabase};
use eavm_core::strategy::{RequestView, ServerView};
use eavm_core::{AllocationStrategy, DbModel, OptimizationGoal, Proactive};
use eavm_faults::{FaultConfig, FaultPlan, LookupFaults};
use eavm_partitions::{multiset_partitions, multiset_partitions_capped, SetPartitions};
use eavm_testbed::{ApplicationProfile, RunSimulator};
use eavm_types::{JobId, MixVector, Seconds, ServerId, WorkloadType};

fn bench_partitions(c: &mut Criterion) {
    c.bench_function("orlov_set_partitions_n10", |b| {
        b.iter(|| SetPartitions::new(black_box(10)).count())
    });
    c.bench_function("multiset_partitions_4_identical", |b| {
        b.iter(|| multiset_partitions(black_box(&[4, 0, 0]), u32::MAX).len())
    });
    c.bench_function("multiset_partitions_burst_20_capped", |b| {
        // A full burst: 5 jobs x 4 VMs across 3 types, block size <= 10,
        // bounded at the allocator's real search cap (4096 partitions).
        b.iter(|| multiset_partitions_capped(black_box(&[8, 6, 6]), 10, 4_096).len())
    });
}

fn database() -> ModelDatabase {
    DbBuilder::exact().build().expect("db")
}

fn bench_database(c: &mut Criterion) {
    let db = database();
    let bounds = db.aux().os_bounds;
    let mixes: Vec<MixVector> = MixVector::space(bounds).filter(|m| !m.is_empty()).collect();
    c.bench_function("db_binary_search_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % mixes.len();
            black_box(db.lookup(mixes[i]))
        })
    });
    c.bench_function("db_estimate_in_grid", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % mixes.len();
            black_box(db.estimate(mixes[i]).unwrap())
        })
    });
    c.bench_function("db_estimate_extrapolated", |b| {
        b.iter(|| black_box(db.estimate(MixVector::new(12, 6, 9)).unwrap()))
    });
}

/// A 70-server fleet in a mid-load state.
fn mid_load_fleet() -> Vec<ServerView> {
    (0..70u32)
        .map(|i| {
            let mix = match i % 4 {
                0 => MixVector::new(4, 0, 0),
                1 => MixVector::new(2, 1, 1),
                2 => MixVector::new(0, 2, 3),
                _ => MixVector::EMPTY,
            };
            ServerView::homogeneous(ServerId::new(i), mix)
        })
        .collect()
}

fn cpu_request(deadline: Seconds) -> RequestView {
    RequestView {
        id: JobId::new(0),
        workload: WorkloadType::Cpu,
        vm_count: 4,
        deadline,
    }
}

fn bench_proactive_decision(c: &mut Criterion) {
    let db = DbModel::new(database());
    let deadlines = [Seconds(3600.0), Seconds(3000.0), Seconds(2700.0)];
    let mut pa = Proactive::new(db, OptimizationGoal::BALANCED, deadlines).with_qos_margin(0.65);
    let servers = mid_load_fleet();
    let request = cpu_request(deadlines[0]);
    c.bench_function("proactive_allocate_4vms_70servers", |b| {
        b.iter(|| {
            pa.allocate(black_box(&request), black_box(&servers))
                .unwrap()
        })
    });
}

fn bench_memoized_search(c: &mut Criterion) {
    // The same partition-search scoring workload with and without the
    // service's LRU memoization layer in front of the DbModel: every
    // candidate block re-evaluates `(resident mix + pending block)`
    // keys, so a warm cache should shortcut most model lookups.
    let deadlines = [Seconds(3600.0), Seconds(3000.0), Seconds(2700.0)];
    let servers = mid_load_fleet();
    let request = cpu_request(deadlines[0]);
    let mut group = c.benchmark_group("partition_search");
    let mut plain = Proactive::new(
        DbModel::new(database()),
        OptimizationGoal::BALANCED,
        deadlines,
    )
    .with_qos_margin(0.65);
    group.bench_function("unmemoized", |b| {
        b.iter(|| {
            plain
                .allocate(black_box(&request), black_box(&servers))
                .unwrap()
        })
    });
    let mut memoized = Proactive::new(
        eavm_service::MemoModel::new(DbModel::new(database()), 4_096),
        OptimizationGoal::BALANCED,
        deadlines,
    )
    .with_qos_margin(0.65);
    group.bench_function("memoized", |b| {
        b.iter(|| {
            memoized
                .allocate(black_box(&request), black_box(&servers))
                .unwrap()
        })
    });
    group.finish();
    let stats = memoized.model().cache_stats();
    println!(
        "#   memoized search cache: hits={} misses={} hit-rate={:.1}%",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
}

fn bench_runsim(c: &mut Criterion) {
    let sim = RunSimulator::reference();
    let fftw = ApplicationProfile::fftw();
    c.bench_function("runsim_9_fftw_clones", |b| {
        b.iter(|| sim.run_clones(black_box(&fftw), 9, None))
    });
    let suite = eavm_testbed::BenchmarkSuite::standard();
    let mixed: Vec<&ApplicationProfile> = vec![
        suite.representative(WorkloadType::Cpu),
        suite.representative(WorkloadType::Cpu),
        suite.representative(WorkloadType::Mem),
        suite.representative(WorkloadType::Io),
        suite.representative(WorkloadType::Io),
    ];
    c.bench_function("runsim_mixed_5vms", |b| {
        b.iter(|| sim.run(black_box(&mixed), None))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let p = Pipeline::build(PipelineConfig::small(42)).expect("pipeline");
    let (smaller, _) = p.clouds();
    c.bench_function("simulate_600vms_ff", |b| {
        b.iter(|| p.run(StrategyKind::Ff, black_box(&smaller)).unwrap())
    });
    c.bench_function("simulate_600vms_pa05", |b| {
        b.iter(|| p.run(StrategyKind::Pa(0.5), black_box(&smaller)).unwrap())
    });
}

fn bench_learned_model(c: &mut Criterion) {
    let db = database();
    c.bench_function("learned_model_fit", |b| {
        b.iter(|| eavm_core::learned::LearnedModel::fit(black_box(&db)).unwrap())
    });
    let model = eavm_core::learned::LearnedModel::fit(&db).unwrap();
    use eavm_core::AllocationModel;
    c.bench_function("learned_model_estimate", |b| {
        b.iter(|| {
            model
                .estimate_mix(black_box(MixVector::new(4, 2, 3)))
                .unwrap()
        })
    });
}

fn bench_swf(c: &mut Criterion) {
    use eavm_swf::{GeneratorConfig, SwfTrace, TraceGenerator};
    let mut generator = TraceGenerator::new(GeneratorConfig {
        seed: 1,
        total_jobs: 2_000,
        ..Default::default()
    })
    .unwrap();
    let trace = generator.generate();
    let text = trace.to_text();
    c.bench_function("swf_parse_2000_jobs", |b| {
        b.iter(|| SwfTrace::parse(black_box(&text)).unwrap())
    });
    c.bench_function("swf_serialize_2000_jobs", |b| b.iter(|| trace.to_text()));
    c.bench_function("swf_clean_2000_jobs", |b| {
        b.iter(|| {
            let mut t = trace.clone();
            eavm_swf::clean_trace(&mut t)
        })
    });
}

fn bench_telemetry(c: &mut Criterion) {
    use eavm_service::{replay_online, ServiceConfig};
    use eavm_telemetry::Telemetry;

    // Raw instrument cost: a registry-backed increment/record against
    // the disabled no-op handles (a branch on `None`).
    let enabled = Telemetry::new();
    let disabled = Telemetry::disabled();
    let counter_on = enabled.counter("bench.counter");
    let counter_off = disabled.counter("bench.counter");
    let hist_on = enabled.histogram("bench.histogram");
    let hist_off = disabled.histogram("bench.histogram");
    let mut group = c.benchmark_group("telemetry_instrument");
    group.bench_function("counter_enabled", |b| {
        b.iter(|| counter_on.add(black_box(1)))
    });
    group.bench_function("counter_noop", |b| b.iter(|| counter_off.add(black_box(1))));
    group.bench_function("histogram_enabled", |b| {
        b.iter(|| hist_on.record(black_box(180)))
    });
    group.bench_function("histogram_noop", |b| {
        b.iter(|| hist_off.record(black_box(180)))
    });
    group.finish();

    // The overhead claim that matters: the full service throughput
    // sweep with telemetry disabled vs enabled (instrumentation must be
    // within noise when off, and cheap even when on).
    let p = Pipeline::build(PipelineConfig::small(42)).expect("pipeline");
    let mut group = c.benchmark_group("service_replay_telemetry");
    group.sample_size(10);
    for (label, handle) in [
        ("disabled", Telemetry::disabled()),
        ("enabled", Telemetry::new()),
    ] {
        let requests = &p.requests;
        let db = &p.db;
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut config = ServiceConfig::new(2, p.config.smaller_servers)
                    .with_telemetry(std::sync::Arc::clone(&handle));
                config.deadlines = p.deadlines;
                config.qos_margin = p.config.qos_margin;
                replay_online(black_box(db), config, black_box(requests)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_faults(c: &mut Criterion) {
    // Plan generation is front-loaded setup cost: it must stay cheap
    // enough to regenerate per experiment run.
    c.bench_function("fault_plan_generate_64_hosts_24h", |b| {
        b.iter(|| {
            FaultPlan::generate(black_box(&FaultConfig::uniform(42, 2.0)), 64, 86_400.0)
                .events()
                .len()
        })
    });
    // The lookup predicate sits on the model hot path when chaos is
    // armed; it is a hash and a compare, nothing more.
    let faults = LookupFaults::new(7, 0.1);
    c.bench_function("lookup_fault_predicate_1k", |b| {
        b.iter(|| {
            (0..1_000u64)
                .filter(|&k| faults.fails(black_box(k)))
                .count()
        })
    });
}

fn bench_db_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_build");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| DbBuilder::exact().build().unwrap())
    });
    group.bench_function("parallel_4", |b| {
        b.iter(|| DbBuilder::exact().build_parallel(4).unwrap())
    });
    group.finish();
}

fn bench_durability(c: &mut Criterion) {
    use eavm_durability::{
        recover_dir, wal_path, PlacementRec, ReqRec, SnapshotRec, Wal, WalRecord,
    };

    fn bench_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eavm-bench-dur-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn admitted(ticket: u64) -> WalRecord {
        WalRecord::Admitted {
            ticket,
            shard: (ticket % 4) as u32,
            placements: vec![PlacementRec {
                server: (ticket % 16) as u32,
                cpu: 2,
                mem: 1,
                io: 0,
            }],
        }
    }

    // Journal-append overhead per admission: one verdict record encoded
    // and framed into the WAL. A batch of 256 appends plus the one
    // fsync a checkpoint boundary would pay, on a fresh file each
    // iteration so the cost does not drift with file size.
    let mut group = c.benchmark_group("durability");
    group.sample_size(20);
    let dir = bench_dir("append");
    let mut n = 0u64;
    group.bench_function("wal_append_256_sync", |b| {
        b.iter(|| {
            n += 1;
            let path = wal_path(&dir).with_extension(format!("{n}"));
            let (mut wal, _) = Wal::open(&path).unwrap();
            for ticket in 0..256u64 {
                wal.append(black_box(&admitted(ticket).encode())).unwrap();
            }
            wal.sync().unwrap();
            drop(wal);
            let _ = std::fs::remove_file(&path);
        })
    });

    group.bench_function("wal_record_encode_decode", |b| {
        let record = admitted(12345);
        b.iter(|| {
            let bytes = black_box(&record).encode();
            WalRecord::decode(black_box(&bytes)).unwrap()
        })
    });

    // Replay cost: decode + validate a 2 000-frame WAL (1 000
    // submit/admit pairs), the dominant term of a snapshotless restart.
    let replay = bench_dir("replay");
    {
        let (mut wal, _) = Wal::open(&wal_path(&replay)).unwrap();
        for ticket in 0..1_000u64 {
            let req = ReqRec {
                id: ticket as u32,
                submit: ticket as f64,
                workload: (ticket % 3) as u8,
                vm_count: 2,
                deadline: 5_000.0,
                priority: (ticket % 3) as u8,
            };
            wal.append(&WalRecord::Submit { ticket, req }.encode())
                .unwrap();
            wal.append(&admitted(ticket).encode()).unwrap();
        }
        wal.sync().unwrap();
    }
    group.bench_function("recover_dir_2k_frames", |b| {
        b.iter(|| {
            let state = recover_dir(black_box(&replay)).unwrap();
            assert_eq!(state.frames, 2_000);
            state
        })
    });

    // Checkpoint round trip: a 4-shard, 64-server fleet snapshot,
    // written atomically (tmp + rename + fsync) and read back.
    let snapdir = bench_dir("snap");
    let snapshot = SnapshotRec {
        seq: 1,
        wal_frames: 2_000,
        now: 1_234.5,
        next_ticket: 1_000,
        cache_generation: 1,
        shards: (0..4u32)
            .map(|index| eavm_durability::ShardSnapRec {
                index,
                clock: 1_234.5,
                energy: 9.9e6,
                servers: (0..16u32)
                    .map(|s| eavm_durability::ServerSnapRec {
                        server: index * 16 + s,
                        residents: vec![(0, 2_000.0), (1, 2_500.0), (2, 3_000.0)],
                    })
                    .collect(),
            })
            .collect(),
        parked: vec![],
        counters: vec![("submitted".into(), 1_000)],
    };
    let mut seq = 0u64;
    group.bench_function("snapshot_write_read", |b| {
        b.iter(|| {
            seq += 1;
            let path = eavm_durability::write_snapshot(&snapdir, seq, &snapshot.encode()).unwrap();
            let payload = eavm_durability::read_snapshot(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            SnapshotRec::decode(black_box(&payload)).unwrap()
        })
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&replay);
    let _ = std::fs::remove_dir_all(&snapdir);
}

criterion_group!(
    benches,
    bench_partitions,
    bench_database,
    bench_proactive_decision,
    bench_memoized_search,
    bench_runsim,
    bench_end_to_end,
    bench_learned_model,
    bench_swf,
    bench_telemetry,
    bench_faults,
    bench_db_build,
    bench_durability
);
criterion_main!(benches);
