//! Property-based tests for the testbed substrate: contention model
//! physics, power bounds, meter accuracy, run-integrator invariants.

use eavm_testbed::{
    ApplicationProfile, BenchmarkSuite, ContentionModel, PerSubsystem, PowerMeter, PowerModel,
    RunSimulator, ServerSpec,
};
use eavm_types::{Seconds, Watts, WorkloadType};
use proptest::prelude::*;

/// A bounded random application profile that always validates.
fn arb_profile() -> impl Strategy<Value = ApplicationProfile> {
    (
        0.05f64..1.0,     // cpu demand (cores)
        0.0f64..3.0,      // mem bandwidth GB/s
        0.0f64..80.0,     // disk MB/s
        0.0f64..100.0,    // net MB/s
        50.0f64..900.0,   // footprint MB
        0.0f64..0.6,      // serial fraction
        120.0f64..3000.0, // base runtime
        0usize..3,        // class
    )
        .prop_map(|(cpu, mem, disk, net, foot, serial, runtime, class)| {
            // Phase weights proportional to normalized demands (plus a CPU
            // floor), summing to exactly 1.
            let server = ServerSpec::reference_rack_server();
            let mut w = [
                0.2 + cpu / server.capacity.0[0],
                mem / server.capacity.0[1],
                disk / server.capacity.0[2],
                net / server.capacity.0[3],
            ];
            let sum: f64 = w.iter().sum();
            for x in &mut w {
                *x /= sum;
            }
            ApplicationProfile {
                name: "random".into(),
                class: WorkloadType::from_index(class),
                demand: PerSubsystem([cpu, mem, disk, net]),
                phase_weights: PerSubsystem(w),
                mem_footprint_mb: foot,
                serial_frac: serial,
                base_runtime: Seconds(runtime),
                burst: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_profiles_validate(p in arb_profile()) {
        prop_assert!(p.validate().is_ok(), "{:?}", p.validate());
    }

    /// Physics: a solo VM runs at base speed; co-location never speeds
    /// anyone up; more co-tenants never help.
    #[test]
    fn colocation_never_helps(p in arb_profile(), q in arb_profile(), n in 1usize..6) {
        let m = ContentionModel::default();
        let server = ServerSpec::reference_rack_server();
        let solo = m.projected_time(&server, &[&p], 0);
        prop_assert!((solo.value() - p.base_runtime.value()).abs() < 1e-9);

        let mut set: Vec<&ApplicationProfile> = vec![&p];
        let mut prev = solo;
        for _ in 0..n {
            set.push(&q);
            let t = m.projected_time(&server, &set, 0);
            prop_assert!(t.value() >= prev.value() - 1e-9, "adding a co-tenant sped p up");
            prev = t;
        }
    }

    /// Power stays within [idle, peak] for any workload set.
    #[test]
    fn power_is_bounded(profiles in proptest::collection::vec(arb_profile(), 0..12)) {
        let server = ServerSpec::reference_rack_server();
        let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
        let pwr = PowerModel::power_with_vms(&server, &refs);
        prop_assert!(pwr >= Watts(server.idle_power_watts));
        prop_assert!(pwr.value() <= server.peak_power_watts() + 1e-9);
        if refs.is_empty() {
            prop_assert_eq!(pwr, Watts(server.idle_power_watts));
        }
    }

    /// The noisy meter's integrated energy stays within its accuracy
    /// band of the analytic truth, for any mixed run.
    #[test]
    fn meter_error_is_within_spec(seed in 0u64..500, n_cpu in 0usize..4, n_io in 0usize..4) {
        prop_assume!(n_cpu + n_io > 0);
        let suite = BenchmarkSuite::standard();
        let mut vms: Vec<&ApplicationProfile> = Vec::new();
        for _ in 0..n_cpu { vms.push(suite.representative(WorkloadType::Cpu)); }
        for _ in 0..n_io { vms.push(suite.representative(WorkloadType::Io)); }
        let sim = RunSimulator::reference();
        let mut meter = PowerMeter::watts_up(seed);
        let out = sim.run(&vms, Some(&mut meter));
        let rel = (out.energy_measured.value() - out.energy_true.value()).abs()
            / out.energy_true.value();
        // ±1.5 % per-sample noise, plus ≤1 sample of discretization.
        prop_assert!(rel < 0.02, "meter error {rel}");
        prop_assert!(out.max_power.value() <= 1.015 * 265.0 + 1e-6);
    }

    /// Run-integrator sandwich: each VM's realized finish time lies
    /// between its solo runtime and its held-full-mix projection.
    #[test]
    fn finish_times_are_sandwiched(profiles in proptest::collection::vec(arb_profile(), 1..6)) {
        let sim = RunSimulator::reference();
        let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
        let out = sim.run(&refs, None);
        let held = sim.model.projected_times(&sim.server, &refs);
        for (i, fin) in out.finish_times.iter().enumerate() {
            prop_assert!(fin.value() >= refs[i].base_runtime.value() - 1e-6,
                "vm {i} finished faster than solo");
            prop_assert!(fin.value() <= held[i].value() + 1e-6,
                "vm {i} slower than the held-mix worst case");
        }
        prop_assert_eq!(out.makespan,
            out.finish_times.iter().copied().fold(Seconds::ZERO, Seconds::max));
    }

    /// Energy is consistent with the power bounds over the makespan.
    #[test]
    fn run_energy_is_bounded_by_power_envelope(profiles in proptest::collection::vec(arb_profile(), 1..6)) {
        let sim = RunSimulator::reference();
        let refs: Vec<&ApplicationProfile> = profiles.iter().collect();
        let out = sim.run(&refs, None);
        let lo = sim.server.idle_power_watts * out.makespan.value();
        let hi = sim.server.peak_power_watts() * out.makespan.value();
        prop_assert!(out.energy_true.value() >= lo - 1e-6);
        prop_assert!(out.energy_true.value() <= hi + 1e-6);
    }
}
