//! HPC application (benchmark workload) descriptors.
//!
//! Section III-A of the paper profiles a comprehensive set of standard HPC
//! benchmarks with mpstat/iostat/netstat/perfctr/PAPI and classifies each
//! as CPU-, memory-, and/or I/O-intensive. We encode the outcome of that
//! profiling directly: each [`ApplicationProfile`] carries the average
//! per-subsystem demand of one single-process VM running the benchmark,
//! the fraction of solo runtime spent *bound* on each subsystem (used by
//! the contention model to weight slowdowns), the guest memory footprint,
//! the serial initialization fraction, and the solo runtime on an idle
//! reference server.

use eavm_types::{Seconds, WorkloadType};

use crate::server::{PerSubsystem, Subsystem};

/// Average resource demand of one VM, by subsystem. Units match
/// [`crate::server::ServerSpec::capacity`]: CPU in cores, memory bandwidth
/// in GB/s, disk bandwidth in MB/s, network bandwidth in MB/s.
pub type DemandVector = PerSubsystem;

/// A repeating demand burst used by the profiler to render phase-structured
/// workloads (e.g. the compute/communicate alternation of MPI codes in
/// Fig. 1 right). During the "on" part of each period the named subsystem's
/// demand is scaled up and the others down, producing the interleaved
/// utilization traces of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPattern {
    /// Subsystem that bursts.
    pub subsystem: Subsystem,
    /// Burst period, seconds.
    pub period: Seconds,
    /// Fraction of each period that the burst is active, in `(0, 1)`.
    pub duty: f64,
}

/// Static profile of one benchmark workload (one single-process VM, per the
/// paper's "single process per VM" assumption).
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationProfile {
    /// Benchmark name (e.g. `fftw`, `hpl`, `sysbench`).
    pub name: String,
    /// Coarse classification used as the model-database key.
    pub class: WorkloadType,
    /// Average demand during the main phase.
    pub demand: DemandVector,
    /// Fraction of solo runtime bound on each subsystem; the contention
    /// model weights per-subsystem slowdowns by these. Must sum to 1.
    pub phase_weights: PerSubsystem,
    /// Guest RAM footprint, MB.
    pub mem_footprint_mb: f64,
    /// Fraction of solo runtime that is serial initialization and does not
    /// contend with co-located VMs (FFTW's "long initialization phase").
    pub serial_frac: f64,
    /// Solo runtime on an idle reference server (the paper's `TC`/`TM`/`TI`).
    pub base_runtime: Seconds,
    /// Optional bursty phase structure rendered by the profiler.
    pub burst: Option<BurstPattern>,
}

impl ApplicationProfile {
    /// Validate profile invariants.
    pub fn validate(&self) -> Result<(), String> {
        let wsum = self.phase_weights.sum();
        if (wsum - 1.0).abs() > 1e-9 {
            return Err(format!(
                "{}: phase weights must sum to 1, got {wsum}",
                self.name
            ));
        }
        if !(0.0..1.0).contains(&self.serial_frac) {
            return Err(format!(
                "{}: serial fraction must be in [0,1), got {}",
                self.name, self.serial_frac
            ));
        }
        if self.base_runtime <= Seconds::ZERO {
            return Err(format!("{}: base runtime must be positive", self.name));
        }
        if self.mem_footprint_mb <= 0.0 {
            return Err(format!("{}: memory footprint must be positive", self.name));
        }
        for (s, d) in self.demand.iter() {
            if d < 0.0 {
                return Err(format!("{}: negative demand for {s}", self.name));
            }
        }
        if let Some(b) = &self.burst {
            if b.period <= Seconds::ZERO || !(0.0 < b.duty && b.duty < 1.0) {
                return Err(format!("{}: invalid burst pattern", self.name));
            }
        }
        Ok(())
    }

    /// FFTW: discrete Fourier transform, single thread, long initialization
    /// phase (plan creation). The paper's Fig. 2 subject.
    pub fn fftw() -> Self {
        ApplicationProfile {
            name: "fftw".into(),
            class: WorkloadType::Cpu,
            demand: PerSubsystem([1.0, 0.4, 2.0, 0.0]),
            phase_weights: PerSubsystem([0.85, 0.11, 0.04, 0.0]),
            mem_footprint_mb: 320.0,
            serial_frac: 0.5,
            base_runtime: Seconds(1200.0),
            burst: None,
        }
    }

    /// HPL Linpack: dense linear solve, double precision.
    pub fn hpl() -> Self {
        ApplicationProfile {
            name: "hpl".into(),
            class: WorkloadType::Cpu,
            demand: PerSubsystem([1.0, 0.8, 1.0, 0.0]),
            phase_weights: PerSubsystem([0.80, 0.17, 0.03, 0.0]),
            mem_footprint_mb: 350.0,
            serial_frac: 0.12,
            base_runtime: Seconds(1500.0),
            burst: None,
        }
    }

    /// sysbench: multi-threaded database-style benchmark; memory-intensive.
    pub fn sysbench() -> Self {
        ApplicationProfile {
            name: "sysbench".into(),
            class: WorkloadType::Mem,
            demand: PerSubsystem([0.6, 2.2, 5.0, 0.0]),
            phase_weights: PerSubsystem([0.25, 0.65, 0.10, 0.0]),
            mem_footprint_mb: 850.0,
            serial_frac: 0.06,
            base_runtime: Seconds(1000.0),
            burst: None,
        }
    }

    /// b_eff_io: MPI-I/O benchmark; disk- and network-intensive.
    pub fn b_eff_io() -> Self {
        ApplicationProfile {
            name: "b_eff_io".into(),
            class: WorkloadType::Io,
            demand: PerSubsystem([0.3, 0.3, 55.0, 30.0]),
            phase_weights: PerSubsystem([0.15, 0.05, 0.55, 0.25]),
            mem_footprint_mb: 256.0,
            serial_frac: 0.05,
            base_runtime: Seconds(900.0),
            burst: Some(BurstPattern {
                subsystem: Subsystem::Net,
                period: Seconds(40.0),
                duty: 0.4,
            }),
        }
    }

    /// bonnie++: hard-drive and filesystem benchmark.
    pub fn bonnie() -> Self {
        ApplicationProfile {
            name: "bonnie++".into(),
            class: WorkloadType::Io,
            demand: PerSubsystem([0.25, 0.2, 70.0, 0.0]),
            phase_weights: PerSubsystem([0.10, 0.05, 0.85, 0.0]),
            mem_footprint_mb: 128.0,
            serial_frac: 0.02,
            base_runtime: Seconds(800.0),
            burst: None,
        }
    }

    /// A CPU- cum network-intensive MPI workload, the subject of Fig. 1
    /// (right): alternating compute and communication phases.
    pub fn mpi_compute_comm() -> Self {
        ApplicationProfile {
            name: "mpi-compute-comm".into(),
            class: WorkloadType::Cpu,
            demand: PerSubsystem([1.0, 0.5, 1.0, 55.0]),
            phase_weights: PerSubsystem([0.60, 0.10, 0.02, 0.28]),
            mem_footprint_mb: 400.0,
            serial_frac: 0.08,
            base_runtime: Seconds(1400.0),
            burst: Some(BurstPattern {
                subsystem: Subsystem::Net,
                period: Seconds(30.0),
                duty: 0.35,
            }),
        }
    }
}

/// The benchmark suite used to build the model database: one representative
/// workload per [`WorkloadType`], mirroring the paper's choice of FFTW
/// (CPU), sysbench (memory), and b_eff_io (I/O) as class representatives,
/// plus the remaining profiled benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkSuite {
    /// Representative profile per workload type, indexed by
    /// [`WorkloadType::index`].
    representatives: [ApplicationProfile; 3],
    /// Every profiled benchmark (superset of the representatives).
    all: Vec<ApplicationProfile>,
}

impl BenchmarkSuite {
    /// The paper's suite with its default representatives.
    pub fn standard() -> Self {
        let reps = [
            ApplicationProfile::fftw(),
            ApplicationProfile::sysbench(),
            ApplicationProfile::b_eff_io(),
        ];
        let all = vec![
            ApplicationProfile::fftw(),
            ApplicationProfile::hpl(),
            ApplicationProfile::sysbench(),
            ApplicationProfile::b_eff_io(),
            ApplicationProfile::bonnie(),
            ApplicationProfile::mpi_compute_comm(),
        ];
        BenchmarkSuite {
            representatives: reps,
            all,
        }
    }

    /// Build a suite from explicit representatives (`[cpu, mem, io]`).
    pub fn with_representatives(reps: [ApplicationProfile; 3]) -> Result<Self, String> {
        for (i, p) in reps.iter().enumerate() {
            p.validate()?;
            if p.class.index() != i {
                return Err(format!(
                    "representative {} has class {} but occupies the {} slot",
                    p.name,
                    p.class,
                    WorkloadType::from_index(i)
                ));
            }
        }
        let all = reps.to_vec();
        Ok(BenchmarkSuite {
            representatives: reps,
            all,
        })
    }

    /// The representative profile for a workload type.
    #[inline]
    pub fn representative(&self, ty: WorkloadType) -> &ApplicationProfile {
        &self.representatives[ty.index()]
    }

    /// Every profiled benchmark.
    pub fn all(&self) -> &[ApplicationProfile] {
        &self.all
    }

    /// Find a benchmark by name.
    pub fn by_name(&self, name: &str) -> Option<&ApplicationProfile> {
        self.all.iter().find(|p| p.name == name)
    }

    /// Solo runtime of the representative for a type (the paper's
    /// `TC`/`TM`/`TI`).
    pub fn base_runtime(&self, ty: WorkloadType) -> Seconds {
        self.representative(ty).base_runtime
    }
}

impl Default for BenchmarkSuite {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_standard_profiles_validate() {
        for p in BenchmarkSuite::standard().all() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn representatives_cover_all_types() {
        let suite = BenchmarkSuite::standard();
        for ty in WorkloadType::ALL {
            assert_eq!(suite.representative(ty).class, ty);
        }
    }

    #[test]
    fn fftw_matches_paper_narrative() {
        let fftw = ApplicationProfile::fftw();
        // "single thread, with long initialization phase"
        assert_eq!(fftw.demand[Subsystem::Cpu], 1.0);
        assert!(fftw.serial_frac >= 0.3);
        assert_eq!(fftw.class, WorkloadType::Cpu);
    }

    #[test]
    fn io_benchmarks_stress_disk() {
        for p in [ApplicationProfile::b_eff_io(), ApplicationProfile::bonnie()] {
            assert_eq!(p.class, WorkloadType::Io);
            assert!(p.demand[Subsystem::Disk] > 30.0);
        }
    }

    #[test]
    fn by_name_finds_benchmarks() {
        let suite = BenchmarkSuite::standard();
        assert!(suite.by_name("hpl").is_some());
        assert!(suite.by_name("bonnie++").is_some());
        assert!(suite.by_name("nonexistent").is_none());
    }

    #[test]
    fn with_representatives_checks_slot_classes() {
        let bad = [
            ApplicationProfile::fftw(),
            ApplicationProfile::fftw(), // CPU profile in the MEM slot
            ApplicationProfile::b_eff_io(),
        ];
        assert!(BenchmarkSuite::with_representatives(bad).is_err());

        let good = [
            ApplicationProfile::hpl(),
            ApplicationProfile::sysbench(),
            ApplicationProfile::bonnie(),
        ];
        assert!(BenchmarkSuite::with_representatives(good).is_ok());
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut p = ApplicationProfile::fftw();
        p.phase_weights = PerSubsystem([0.5, 0.0, 0.0, 0.0]);
        assert!(p.validate().is_err());

        let mut p = ApplicationProfile::fftw();
        p.serial_frac = 1.0;
        assert!(p.validate().is_err());

        let mut p = ApplicationProfile::fftw();
        p.base_runtime = Seconds(0.0);
        assert!(p.validate().is_err());

        let mut p = ApplicationProfile::fftw();
        p.mem_footprint_mb = 0.0;
        assert!(p.validate().is_err());

        let mut p = ApplicationProfile::fftw();
        p.demand[Subsystem::Net] = -1.0;
        assert!(p.validate().is_err());

        let mut p = ApplicationProfile::b_eff_io();
        p.burst = Some(BurstPattern {
            subsystem: Subsystem::Net,
            period: Seconds(10.0),
            duty: 1.5,
        });
        assert!(p.validate().is_err());
    }
}
