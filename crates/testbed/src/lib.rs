//! # eavm-testbed
//!
//! Synthetic single-server testbed substituting for the paper's physical
//! infrastructure: Dell rack servers (quad-core Xeon X3220, 4 GB RAM, two
//! disks, two 1 GbE NICs) running Xen 3.1, instrumented with a Watts Up?
//! .NET power meter and OS-level profilers (mpstat / iostat / netstat /
//! perfctr / PAPI).
//!
//! The substrate has five pieces:
//!
//! * [`server`] — the hardware description: per-subsystem capacities
//!   (CPU cores, memory bandwidth, disk bandwidth, network bandwidth) and
//!   the RAM budget available to guest VMs.
//! * [`application`] — HPC benchmark workload descriptors: per-subsystem
//!   demand vectors, phase weights, memory footprint, serial (init)
//!   fraction, and solo runtime. Ships the paper's benchmark suite (HPL,
//!   FFTW, sysbench, b_eff_io, bonnie++) plus the CPU+network MPI workload
//!   of Fig. 1 (right).
//! * [`contention`] — the analytic co-location model: phase-weighted
//!   subsystem contention, Xen-like per-VM interference, and a RAM
//!   oversubscription (thrashing) penalty. Calibrated so that a
//!   CPU-intensive FFTW-like workload has its shortest *average* execution
//!   time around 9 co-located VMs and degrades sharply past 11, matching
//!   Fig. 2 of the paper.
//! * [`power`] + [`meter`] — the server power model (125 W static draw plus
//!   per-subsystem dynamic power) and a simulated Watts Up? meter (1 Hz
//!   sampling, ±1.5 % accuracy) that integrates measured energy.
//! * [`runsim`] + [`profiler`] — a piecewise integrator that replays a set
//!   of VMs launched together on one server (producing the ground-truth
//!   execution times / energy behind every model-database record), and a
//!   subsystem-utilization profiler that reproduces Fig. 1 and the paper's
//!   "X-intensive" classification rule.

#![forbid(unsafe_code)]

pub mod application;
pub mod contention;
pub mod meter;
pub mod power;
pub mod profiler;
pub mod runsim;
pub mod server;
pub mod thermal;

pub use application::{ApplicationProfile, BenchmarkSuite, DemandVector};
pub use contention::ContentionModel;
pub use meter::PowerMeter;
pub use power::PowerModel;
pub use profiler::{ClassificationRule, Profiler, UtilizationSample};
pub use runsim::{RunOutcome, RunSimulator};
pub use server::{PerSubsystem, ServerSpec, Subsystem};
pub use thermal::{ThermalModel, ThermalOutcome};
