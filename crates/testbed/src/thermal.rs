//! Server thermal model (extension).
//!
//! The paper's future work item ii plans "integrating the proposed
//! solution with schemes for autonomic thermal management in
//! instrumented datacenters", and its companion work (\[3\]) studies
//! reactive thermal management. This module provides the thermal
//! substrate for that direction: a first-order RC model of server
//! temperature driven by the power traces the testbed already produces.
//!
//! Dynamics: `τ · dT/dt = (T_amb + R·P(t)) − T`, i.e. the temperature
//! relaxes toward the steady state `T_amb + R·P` with time constant `τ`
//! — the standard lumped-capacitance abstraction for server thermals.

use eavm_types::{Seconds, Watts};

use crate::meter::PowerStep;

/// First-order RC thermal model of one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalModel {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance, K/W: steady-state rise per watt dissipated.
    pub resistance_k_per_w: f64,
    /// Thermal time constant τ, seconds.
    pub time_constant: Seconds,
}

impl Default for ThermalModel {
    /// A rack server in a 25 °C aisle: 125 W idle ≈ 45 °C outlet,
    /// 265 W peak ≈ 67 °C, τ = 120 s.
    fn default() -> Self {
        ThermalModel {
            ambient_c: 25.0,
            resistance_k_per_w: 0.16,
            time_constant: Seconds(120.0),
        }
    }
}

/// One sample of the simulated temperature trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureSample {
    /// Sample time.
    pub time: Seconds,
    /// Server temperature, °C.
    pub temp_c: f64,
}

/// Summary of a thermal evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalOutcome {
    /// Temperature trace at the evaluation step.
    pub samples: Vec<TemperatureSample>,
    /// Hottest temperature reached, °C.
    pub peak_c: f64,
    /// Time-averaged temperature, °C.
    pub mean_c: f64,
}

impl ThermalModel {
    /// Steady-state temperature under constant power.
    pub fn steady_state_c(&self, power: Watts) -> f64 {
        self.ambient_c + self.resistance_k_per_w * power.value()
    }

    /// Integrate the temperature response to a piecewise-constant power
    /// trace lasting until `end`, starting from `initial_c`, sampled
    /// every `step`.
    pub fn evaluate(
        &self,
        trace: &[PowerStep],
        end: Seconds,
        initial_c: f64,
        step: Seconds,
    ) -> ThermalOutcome {
        assert!(step > Seconds::ZERO, "sampling step must be positive");
        let tau = self.time_constant.value();
        let mut temp = initial_c;
        let mut samples = Vec::new();
        let mut peak = initial_c;
        let mut sum = 0.0;
        let mut t = 0.0;

        let power_at = |time: f64| -> f64 {
            let idx = trace.partition_point(|s| s.start.value() <= time);
            if idx == 0 {
                0.0
            } else {
                trace[idx - 1].power.value()
            }
        };

        while t <= end.value() {
            let target = self.ambient_c + self.resistance_k_per_w * power_at(t);
            // Exact first-order response across one step.
            let dt = step.value().min(end.value() - t).max(1e-9);
            temp = target + (temp - target) * (-dt / tau).exp();
            t += dt;
            samples.push(TemperatureSample {
                time: Seconds(t),
                temp_c: temp,
            });
            peak = peak.max(temp);
            sum += temp;
            if dt < step.value() {
                break;
            }
        }

        let mean = if samples.is_empty() {
            initial_c
        } else {
            sum / samples.len() as f64
        };
        ThermalOutcome {
            samples,
            peak_c: peak,
            mean_c: mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(power: f64) -> Vec<PowerStep> {
        vec![PowerStep {
            start: Seconds::ZERO,
            power: Watts(power),
        }]
    }

    #[test]
    fn steady_state_matches_formula() {
        let m = ThermalModel::default();
        assert!((m.steady_state_c(Watts(125.0)) - 45.0).abs() < 1e-9);
        assert!((m.steady_state_c(Watts(0.0)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn converges_to_steady_state() {
        let m = ThermalModel::default();
        let out = m.evaluate(&flat(200.0), Seconds(3_000.0), m.ambient_c, Seconds(1.0));
        let steady = m.steady_state_c(Watts(200.0));
        let last = out.samples.last().unwrap().temp_c;
        assert!((last - steady).abs() < 0.01, "last={last} steady={steady}");
        assert!(out.peak_c <= steady + 1e-6);
    }

    #[test]
    fn step_response_hits_63_percent_at_tau() {
        let m = ThermalModel::default();
        let out = m.evaluate(&flat(265.0), Seconds(120.0), m.ambient_c, Seconds(1.0));
        let steady = m.steady_state_c(Watts(265.0));
        let at_tau = out.samples.last().unwrap().temp_c;
        let frac = (at_tau - m.ambient_c) / (steady - m.ambient_c);
        assert!((frac - 0.632).abs() < 0.01, "step response fraction {frac}");
    }

    #[test]
    fn hotter_power_means_hotter_server() {
        let m = ThermalModel::default();
        let cool = m.evaluate(&flat(125.0), Seconds(1_000.0), m.ambient_c, Seconds(1.0));
        let hot = m.evaluate(&flat(260.0), Seconds(1_000.0), m.ambient_c, Seconds(1.0));
        assert!(hot.peak_c > cool.peak_c);
        assert!(hot.mean_c > cool.mean_c);
    }

    #[test]
    fn cooldown_after_load_drop() {
        let m = ThermalModel::default();
        let trace = vec![
            PowerStep {
                start: Seconds::ZERO,
                power: Watts(260.0),
            },
            PowerStep {
                start: Seconds(1_000.0),
                power: Watts(125.0),
            },
        ];
        let out = m.evaluate(&trace, Seconds(3_000.0), m.ambient_c, Seconds(1.0));
        let last = out.samples.last().unwrap().temp_c;
        assert!(
            (last - 45.0).abs() < 0.1,
            "must cool to the idle steady state"
        );
        assert!(out.peak_c > 60.0, "must have heated up first");
    }

    #[test]
    fn integrates_real_run_traces() {
        use crate::application::ApplicationProfile;
        use crate::runsim::RunSimulator;
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let light = sim.run_clones(&fftw, 2, None);
        let heavy = sim.run_clones(&fftw, 12, None);
        let m = ThermalModel::default();
        let t_light = m.evaluate(
            &light.power_trace,
            light.makespan,
            m.ambient_c,
            Seconds(5.0),
        );
        let t_heavy = m.evaluate(
            &heavy.power_trace,
            heavy.makespan,
            m.ambient_c,
            Seconds(5.0),
        );
        assert!(t_heavy.peak_c > t_light.peak_c);
    }
}
