//! Single-server run integrator.
//!
//! The paper's benchmarking phase launches a set of VMs together on one
//! server and measures total execution time, per-VM execution times,
//! consumed energy and peak power. [`RunSimulator`] replays such a run
//! against the analytic contention model: all VMs start at `t = 0`; each
//! VM progresses at rate `1 / projected_time(current resident set)`; when
//! a VM finishes, the resident set shrinks, every survivor's rate is
//! re-evaluated, and the server's power level steps down. This
//! piecewise-constant evolution is exactly the interval-weighted
//! semantics of the paper's Fig. 4.
//!
//! The integrator reports both the exact analytic energy and, when a
//! [`PowerMeter`] is supplied, the energy/peak-power a wall-socket meter
//! would have recorded (1 Hz samples, ±1.5 % accuracy).

use eavm_types::{Joules, Seconds, Watts, WorkloadType};

use crate::application::ApplicationProfile;
use crate::contention::ContentionModel;
use crate::meter::{PowerMeter, PowerStep};
use crate::power::PowerModel;
use crate::server::ServerSpec;

/// Outcome of one combined run of `n` VMs launched together.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Completion time of each VM, in input order.
    pub finish_times: Vec<Seconds>,
    /// Makespan of the run (`Time` in Table II): the latest finish.
    pub makespan: Seconds,
    /// Exact analytic energy (∫ P dt over the piecewise trace).
    pub energy_true: Joules,
    /// Energy as integrated from meter samples (equals `energy_true` when
    /// no meter was used).
    pub energy_measured: Joules,
    /// Peak power as seen by the meter (or the exact peak without one).
    pub max_power: Watts,
    /// The piecewise-constant ground-truth power trace.
    pub power_trace: Vec<PowerStep>,
}

impl RunOutcome {
    /// The paper's `avgTimeVM = Time / (Ncpu+Nmem+Nio)`.
    pub fn avg_time_per_vm(&self) -> Seconds {
        if self.finish_times.is_empty() {
            Seconds::ZERO
        } else {
            self.makespan / self.finish_times.len() as f64
        }
    }

    /// Energy-delay product (Table II `EDP`), joule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy_measured.edp(self.makespan)
    }

    /// Mean finish time of VMs whose profile has the given class.
    pub fn mean_finish_of_type(
        &self,
        vms: &[&ApplicationProfile],
        ty: WorkloadType,
    ) -> Option<Seconds> {
        let (sum, count) = self
            .finish_times
            .iter()
            .zip(vms)
            .filter(|(_, p)| p.class == ty)
            .fold((Seconds::ZERO, 0usize), |(s, c), (t, _)| (s + *t, c + 1));
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }
}

/// Progress threshold under which a VM is considered finished; guards
/// against floating-point drift in the piecewise advance.
const EPS: f64 = 1e-9;

/// Replays combined runs on one server.
#[derive(Debug, Clone)]
pub struct RunSimulator {
    /// Hardware under test.
    pub server: ServerSpec,
    /// Co-location model coefficients.
    pub model: ContentionModel,
}

impl RunSimulator {
    /// A simulator for the paper's reference server with default
    /// calibration.
    pub fn reference() -> Self {
        RunSimulator {
            server: ServerSpec::reference_rack_server(),
            model: ContentionModel::default(),
        }
    }

    /// Run the given VMs to completion, optionally metering power.
    pub fn run(&self, vms: &[&ApplicationProfile], meter: Option<&mut PowerMeter>) -> RunOutcome {
        let n = vms.len();
        if n == 0 {
            return RunOutcome {
                finish_times: Vec::new(),
                makespan: Seconds::ZERO,
                energy_true: Joules::ZERO,
                energy_measured: Joules::ZERO,
                max_power: Watts::ZERO,
                power_trace: Vec::new(),
            };
        }

        // Remaining work of each VM as a fraction of its full execution.
        let mut remaining = vec![1.0f64; n];
        let mut finish = vec![Seconds::ZERO; n];
        let mut active: Vec<usize> = (0..n).collect();

        let mut t = Seconds::ZERO;
        let mut energy_true = Joules::ZERO;
        let mut max_power_true = Watts::ZERO;
        let mut trace: Vec<PowerStep> = Vec::new();

        while !active.is_empty() {
            let resident: Vec<&ApplicationProfile> = active.iter().map(|&i| vms[i]).collect();
            let times = self.model.projected_times(&self.server, &resident);
            let power = PowerModel::power_with_vms(&self.server, &resident);
            trace.push(PowerStep { start: t, power });
            max_power_true = max_power_true.max(power);

            // Time until the next VM completes at current rates.
            let mut dt = f64::INFINITY;
            for (slot, &i) in active.iter().enumerate() {
                let until_done = remaining[i] * times[slot].value();
                dt = dt.min(until_done);
            }
            debug_assert!(dt.is_finite() && dt > 0.0, "stalled run integrator");

            // Advance every active VM by dt.
            for (slot, &i) in active.iter().enumerate() {
                remaining[i] -= dt / times[slot].value();
            }
            t += Seconds(dt);
            energy_true += power * Seconds(dt);

            // Retire finished VMs.
            let mut still = Vec::with_capacity(active.len());
            for &i in &active {
                if remaining[i] <= EPS {
                    finish[i] = t;
                } else {
                    still.push(i);
                }
            }
            active = still;
        }

        let (energy_measured, max_power) = match meter {
            Some(m) => {
                let reading = m.measure(&trace, t);
                (reading.energy, reading.max_power)
            }
            None => (energy_true, max_power_true),
        };

        RunOutcome {
            finish_times: finish,
            makespan: t,
            energy_true,
            energy_measured,
            max_power,
            power_trace: trace,
        }
    }

    /// Run `n` clones of one profile (the paper's *base tests*).
    pub fn run_clones(
        &self,
        profile: &ApplicationProfile,
        n: usize,
        meter: Option<&mut PowerMeter>,
    ) -> RunOutcome {
        let vms: Vec<&ApplicationProfile> = std::iter::repeat_n(profile, n).collect();
        self.run(&vms, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::{ApplicationProfile, BenchmarkSuite};

    #[test]
    fn empty_run_is_trivial() {
        let sim = RunSimulator::reference();
        let out = sim.run(&[], None);
        assert_eq!(out.makespan, Seconds::ZERO);
        assert_eq!(out.energy_true, Joules::ZERO);
        assert!(out.finish_times.is_empty());
    }

    #[test]
    fn solo_run_matches_base_runtime_and_power() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let out = sim.run_clones(&fftw, 1, None);
        assert!((out.makespan.value() - fftw.base_runtime.value()).abs() < 1e-6);
        assert_eq!(out.finish_times.len(), 1);
        // Energy = single power level * runtime.
        let p = PowerModel::power_with_vms(&sim.server, &[&fftw]);
        assert!((out.energy_true.value() - (p * out.makespan).value()).abs() < 1e-6);
        assert_eq!(out.power_trace.len(), 1);
    }

    #[test]
    fn identical_vms_finish_together() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let out = sim.run_clones(&fftw, 6, None);
        let first = out.finish_times[0];
        for t in &out.finish_times {
            assert!((t.value() - first.value()).abs() < 1e-6);
        }
        assert_eq!(out.makespan, first);
    }

    #[test]
    fn makespan_exceeds_solo_time_under_contention() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let out = sim.run_clones(&fftw, 8, None);
        assert!(out.makespan > fftw.base_runtime);
    }

    #[test]
    fn mixed_run_steps_power_down_as_vms_finish() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let io = ApplicationProfile::bonnie();
        let out = sim.run(&[&fftw, &fftw, &io], None);
        // Two distinct finish instants => at least two trace steps, and
        // power must be non-increasing across steps (VMs only leave).
        assert!(out.power_trace.len() >= 2);
        for w in out.power_trace.windows(2) {
            assert!(w[1].power <= w[0].power);
        }
    }

    #[test]
    fn shorter_vm_finishes_first_and_survivor_speeds_up() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw(); // 1200 s base
        let io = ApplicationProfile::bonnie(); // 800 s base
        let out = sim.run(&[&fftw, &io], None);
        assert!(out.finish_times[1] < out.finish_times[0]);
        // The CPU VM must finish faster than if the IO VM had stayed the
        // whole time (rate improves after the IO VM leaves), but no faster
        // than solo.
        let m = &sim.model;
        let held = m.projected_time(&sim.server, &[&fftw, &io], 0);
        assert!(out.finish_times[0] <= held + Seconds(1e-6));
        assert!(out.finish_times[0] >= fftw.base_runtime - Seconds(1e-6));
    }

    #[test]
    fn avg_time_per_vm_matches_definition() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let out = sim.run_clones(&fftw, 4, None);
        assert!((out.avg_time_per_vm().value() - out.makespan.value() / 4.0).abs() < 1e-9);
    }

    #[test]
    fn metered_energy_tracks_truth_within_accuracy() {
        let sim = RunSimulator::reference();
        let suite = BenchmarkSuite::standard();
        let vms: Vec<&ApplicationProfile> = vec![
            suite.representative(WorkloadType::Cpu),
            suite.representative(WorkloadType::Mem),
            suite.representative(WorkloadType::Io),
        ];
        let mut meter = PowerMeter::watts_up(123);
        let out = sim.run(&vms, Some(&mut meter));
        let rel =
            (out.energy_measured.value() - out.energy_true.value()).abs() / out.energy_true.value();
        assert!(rel < 0.02, "meter error too large: {rel}");
        assert!(out.max_power > Watts::ZERO);
    }

    #[test]
    fn per_type_mean_finish_times() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let io = ApplicationProfile::bonnie();
        let vms = vec![&fftw, &io];
        let out = sim.run(&vms, None);
        let t_cpu = out.mean_finish_of_type(&vms, WorkloadType::Cpu).unwrap();
        let t_io = out.mean_finish_of_type(&vms, WorkloadType::Io).unwrap();
        assert_eq!(t_cpu, out.finish_times[0]);
        assert_eq!(t_io, out.finish_times[1]);
        assert!(out.mean_finish_of_type(&vms, WorkloadType::Mem).is_none());
    }

    #[test]
    fn edp_is_energy_times_makespan() {
        let sim = RunSimulator::reference();
        let fftw = ApplicationProfile::fftw();
        let out = sim.run_clones(&fftw, 2, None);
        let expect = out.energy_measured.value() * out.makespan.value();
        assert!((out.edp() - expect).abs() < 1e-6);
    }
}
