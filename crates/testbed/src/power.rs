//! Server power model.
//!
//! The paper measures whole-server power with a wall-socket meter and
//! "assume\[s\] a fixed power dissipation of 125 W when a server" is powered
//! on. We model instantaneous draw as that static floor plus a dynamic
//! term per subsystem, linear in the subsystem's effective utilization —
//! the standard datacenter power abstraction, and consistent with the
//! paper's observation (via \[20\]) that under-utilized subsystems can be
//! run in low-power states.

use eavm_types::Watts;

use crate::application::ApplicationProfile;
use crate::contention::ContentionModel;
use crate::server::{PerSubsystem, ServerSpec, Subsystem};

/// Computes instantaneous server power from subsystem utilizations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerModel;

impl PowerModel {
    /// Power drawn by a powered-on server whose subsystem utilizations are
    /// `util` (each in `[0, 1]`).
    pub fn power_at(server: &ServerSpec, util: &PerSubsystem) -> Watts {
        let dynamic: f64 = Subsystem::ALL
            .into_iter()
            .map(|s| server.dynamic_power_watts[s] * util[s].clamp(0.0, 1.0))
            .sum();
        Watts(server.idle_power_watts + dynamic)
    }

    /// Power drawn while the given set of VMs runs on the server.
    pub fn power_with_vms(server: &ServerSpec, vms: &[&ApplicationProfile]) -> Watts {
        Self::power_at(server, &ContentionModel::utilization(server, vms))
    }

    /// Power of an idle (but powered-on) server.
    #[inline]
    pub fn idle_power(server: &ServerSpec) -> Watts {
        Watts(server.idle_power_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::ApplicationProfile;

    #[test]
    fn idle_server_draws_125w() {
        let s = ServerSpec::reference_rack_server();
        assert_eq!(PowerModel::idle_power(&s), Watts(125.0));
        assert_eq!(PowerModel::power_at(&s, &PerSubsystem::ZERO), Watts(125.0));
    }

    #[test]
    fn power_saturates_at_peak() {
        let s = ServerSpec::reference_rack_server();
        let full = PerSubsystem([1.0; 4]);
        let over = PerSubsystem([3.0; 4]);
        assert_eq!(
            PowerModel::power_at(&s, &full),
            PowerModel::power_at(&s, &over)
        );
        assert!((PowerModel::power_at(&s, &full).value() - s.peak_power_watts()).abs() < 1e-9);
    }

    #[test]
    fn power_grows_with_load() {
        let s = ServerSpec::reference_rack_server();
        let fftw = ApplicationProfile::fftw();
        let p1 = PowerModel::power_with_vms(&s, &[&fftw]);
        let p2 = PowerModel::power_with_vms(&s, &[&fftw, &fftw]);
        assert!(p2 > p1);
        assert!(p1 > PowerModel::idle_power(&s));
    }

    #[test]
    fn cpu_load_dominates_dynamic_power() {
        let s = ServerSpec::reference_rack_server();
        let cpu_full = PerSubsystem([1.0, 0.0, 0.0, 0.0]);
        let io_full = PerSubsystem([0.0, 0.0, 1.0, 1.0]);
        assert!(PowerModel::power_at(&s, &cpu_full) > PowerModel::power_at(&s, &io_full));
    }

    #[test]
    fn negative_utilization_is_clamped() {
        let s = ServerSpec::reference_rack_server();
        let neg = PerSubsystem([-1.0; 4]);
        assert_eq!(PowerModel::power_at(&s, &neg), Watts(125.0));
    }
}
