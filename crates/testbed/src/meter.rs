//! Simulated Watts Up? .NET power meter.
//!
//! The paper: "To empirically measure the instantaneous power consumption
//! of the servers we used a Watts Up? .NET power meter. This power meter
//! has an accuracy of 1.5% of the measured power with sampling rate of
//! 1Hz. ... We estimate the consumed energy by integrating the actual
//! power measures over time."
//!
//! [`PowerMeter`] reproduces that measurement chain: it samples a
//! piecewise-constant ground-truth power trace at 1 Hz, perturbs each
//! sample with ±1.5 % multiplicative noise, and integrates the *measured*
//! samples with the trapezoidal rule. Model-database records therefore
//! carry realistic measurement error relative to the analytic ground
//! truth, exactly like the paper's empirical model does.

use eavm_types::{Joules, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a piecewise-constant power trace: the server draws `power`
/// from `start` until the next step (or the end of the trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerStep {
    /// Step start time.
    pub start: Seconds,
    /// Constant power during the step.
    pub power: Watts,
}

/// Result of metering one run.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterReading {
    /// Energy integrated from the (noisy, 1 Hz) samples.
    pub energy: Joules,
    /// Largest sampled power value (the paper's Table II `MaxPower`).
    pub max_power: Watts,
    /// Number of samples taken.
    pub samples: usize,
}

/// Simulated wall-socket power meter.
///
/// ```
/// use eavm_testbed::{PowerMeter, meter::PowerStep};
/// use eavm_types::{Seconds, Watts};
/// let trace = [PowerStep { start: Seconds::ZERO, power: Watts(125.0) }];
/// let reading = PowerMeter::watts_up(7).measure(&trace, Seconds(600.0));
/// let err = (reading.energy.value() - 125.0 * 600.0).abs() / (125.0 * 600.0);
/// assert!(err < 0.015); // within the meter's ±1.5 % accuracy
/// ```
#[derive(Debug, Clone)]
pub struct PowerMeter {
    /// Sampling period (1 s for the Watts Up? .NET).
    pub sample_period: Seconds,
    /// Relative accuracy (0.015 = ±1.5 %).
    pub accuracy: f64,
    rng: StdRng,
}

impl PowerMeter {
    /// A Watts Up? .NET-like meter: 1 Hz, ±1.5 %.
    pub fn watts_up(seed: u64) -> Self {
        PowerMeter {
            sample_period: Seconds(1.0),
            accuracy: 0.015,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// An ideal meter (no noise), useful for exact-value tests.
    pub fn ideal(sample_period: Seconds) -> Self {
        PowerMeter {
            sample_period,
            accuracy: 0.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Ground-truth power at time `t` in a piecewise-constant trace that
    /// ends at `end`.
    fn truth_at(trace: &[PowerStep], end: Seconds, t: Seconds) -> Watts {
        // A sample taken exactly at the end of the run still reads the
        // final power level (the meter integrates up to, not past, `end`).
        if t > end || trace.is_empty() {
            return Watts::ZERO;
        }
        // Last step whose start is <= t.
        let idx = trace.partition_point(|s| s.start <= t);
        if idx == 0 {
            Watts::ZERO
        } else {
            trace[idx - 1].power
        }
    }

    /// Meter a run described by a piecewise-constant trace lasting until
    /// `end`. Steps must be sorted by start time.
    pub fn measure(&mut self, trace: &[PowerStep], end: Seconds) -> MeterReading {
        debug_assert!(
            trace.windows(2).all(|w| w[0].start <= w[1].start),
            "power trace steps must be sorted by start time"
        );
        if end <= Seconds::ZERO {
            return MeterReading {
                energy: Joules::ZERO,
                max_power: Watts::ZERO,
                samples: 0,
            };
        }

        let period = self.sample_period.value();
        let n = (end.value() / period).ceil() as usize;
        let mut prev_sample = self.sample(Self::truth_at(trace, end, Seconds::ZERO));
        let mut max_power = prev_sample;
        let mut energy = Joules::ZERO;
        let mut samples = 1;

        for i in 1..=n {
            let t = Seconds((i as f64 * period).min(end.value()));
            let dt = t - Seconds((i as f64 - 1.0) * period);
            let s = self.sample(Self::truth_at(trace, end, t));
            // Trapezoidal integration over the sampling interval.
            energy += (prev_sample + s) * 0.5 * dt;
            max_power = max_power.max(s);
            prev_sample = s;
            samples += 1;
            if t >= end {
                break;
            }
        }

        MeterReading {
            energy,
            max_power,
            samples,
        }
    }

    /// Apply the meter's accuracy band to a true power value.
    fn sample(&mut self, truth: Watts) -> Watts {
        if self.accuracy == 0.0 {
            return truth;
        }
        let rel: f64 = self.rng.gen_range(-self.accuracy..=self.accuracy);
        truth * (1.0 + rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_trace(power: f64) -> Vec<PowerStep> {
        vec![PowerStep {
            start: Seconds::ZERO,
            power: Watts(power),
        }]
    }

    #[test]
    fn ideal_meter_integrates_exactly() {
        let mut m = PowerMeter::ideal(Seconds(1.0));
        let r = m.measure(&flat_trace(125.0), Seconds(100.0));
        assert!((r.energy.value() - 12_500.0).abs() < 1e-6);
        assert_eq!(r.max_power, Watts(125.0));
    }

    #[test]
    fn ideal_meter_handles_fractional_end() {
        let mut m = PowerMeter::ideal(Seconds(1.0));
        let r = m.measure(&flat_trace(100.0), Seconds(10.5));
        assert!((r.energy.value() - 1_050.0).abs() < 1e-6);
    }

    #[test]
    fn two_step_trace_weights_each_level() {
        let mut m = PowerMeter::ideal(Seconds(1.0));
        let trace = vec![
            PowerStep {
                start: Seconds::ZERO,
                power: Watts(100.0),
            },
            PowerStep {
                start: Seconds(50.0),
                power: Watts(200.0),
            },
        ];
        let r = m.measure(&trace, Seconds(100.0));
        // 50 s at 100 W + 50 s at 200 W = 15 kJ, modulo the single
        // transition sample where the trapezoid splits the step.
        assert!((r.energy.value() - 15_000.0).abs() < 200.0, "{}", r.energy);
        assert_eq!(r.max_power, Watts(200.0));
    }

    #[test]
    fn noisy_meter_stays_within_accuracy_band() {
        let mut m = PowerMeter::watts_up(42);
        let r = m.measure(&flat_trace(125.0), Seconds(1_000.0));
        let truth = 125.0 * 1_000.0;
        let err = (r.energy.value() - truth).abs() / truth;
        assert!(err < 0.015, "integrated error {err} exceeds meter accuracy");
        assert!(r.max_power.value() <= 125.0 * 1.015 + 1e-9);
        assert!(r.max_power.value() >= 125.0);
    }

    #[test]
    fn meter_is_deterministic_per_seed() {
        let r1 = PowerMeter::watts_up(7).measure(&flat_trace(125.0), Seconds(60.0));
        let r2 = PowerMeter::watts_up(7).measure(&flat_trace(125.0), Seconds(60.0));
        assert_eq!(r1, r2);
        let r3 = PowerMeter::watts_up(8).measure(&flat_trace(125.0), Seconds(60.0));
        assert_ne!(r1.energy, r3.energy);
    }

    #[test]
    fn empty_or_zero_length_runs() {
        let mut m = PowerMeter::ideal(Seconds(1.0));
        let r = m.measure(&[], Seconds(10.0));
        assert_eq!(r.energy, Joules::ZERO);
        let r = m.measure(&flat_trace(100.0), Seconds::ZERO);
        assert_eq!(r.samples, 0);
        assert_eq!(r.energy, Joules::ZERO);
    }
}
