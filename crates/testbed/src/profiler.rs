//! Application profiling: subsystem utilization over time + classification.
//!
//! Reproduces Sect. III-A of the paper: "We profiled standard HPC
//! benchmarks with respect to their behaviors and subsystem usage on
//! individual servers" using mpstat/iostat/netstat/perfctr. The
//! [`Profiler`] renders the utilization-over-time traces of Fig. 1 (1 Hz
//! samples of CPU / memory / disk / network utilization of one VM running
//! solo), and [`ClassificationRule`] implements the paper's labelling
//! rule: "if the average demand for a subsystem X is significant, we
//! consider the application to be X-intensive", with multi-dimensional
//! intensity allowed (Fig. 1 right is CPU- *cum* network-intensive).

use eavm_types::{Seconds, WorkloadType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::application::ApplicationProfile;
use crate::server::{PerSubsystem, ServerSpec, Subsystem};

/// One 1 Hz sample of subsystem utilization (fractions of capacity in
/// `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Sample timestamp.
    pub time: Seconds,
    /// Utilization fraction per subsystem.
    pub util: PerSubsystem,
}

/// Result of classifying a profiled application.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Subsystems whose average utilization is significant; an application
    /// can be intensive along multiple dimensions.
    pub intensive: Vec<Subsystem>,
    /// The coarse database label derived from the dominant subsystem.
    pub primary: WorkloadType,
    /// Average utilization per subsystem over the whole run.
    pub average_util: PerSubsystem,
}

/// The paper's "significant average demand" rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationRule {
    /// Minimum average utilization fraction for a subsystem to count as
    /// intensive.
    pub threshold: f64,
}

impl Default for ClassificationRule {
    fn default() -> Self {
        ClassificationRule { threshold: 0.20 }
    }
}

impl ClassificationRule {
    /// Classify from per-subsystem average utilizations.
    pub fn classify(&self, avg: &PerSubsystem) -> Classification {
        let intensive: Vec<Subsystem> = Subsystem::ALL
            .into_iter()
            .filter(|&s| avg[s] >= self.threshold)
            .collect();
        // Dominant subsystem decides the coarse database label; disk and
        // network both map to the paper's "I/O" class.
        let dominant = Subsystem::ALL
            .into_iter()
            .max_by(|&a, &b| avg[a].partial_cmp(&avg[b]).unwrap())
            .expect("non-empty subsystem list");
        let primary = match dominant {
            Subsystem::Cpu => WorkloadType::Cpu,
            Subsystem::Mem => WorkloadType::Mem,
            Subsystem::Disk | Subsystem::Net => WorkloadType::Io,
        };
        Classification {
            intensive,
            primary,
            average_util: *avg,
        }
    }
}

/// Samples a solo run of one application at a fixed rate.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Server whose capacities normalize demand into utilization.
    pub server: ServerSpec,
    /// Sampling period (1 s, like mpstat/iostat in the paper).
    pub sample_period: Seconds,
    /// Relative sampling noise (OS counters jitter), e.g. 0.03.
    pub noise: f64,
    rng: StdRng,
}

impl Profiler {
    /// A 1 Hz profiler on the reference server with mild counter jitter.
    pub fn reference(seed: u64) -> Self {
        Profiler {
            server: ServerSpec::reference_rack_server(),
            sample_period: Seconds(1.0),
            noise: 0.03,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A noise-free profiler, for exact-value tests.
    pub fn ideal(server: ServerSpec) -> Self {
        Profiler {
            server,
            sample_period: Seconds(1.0),
            noise: 0.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Instantaneous demand of the application at solo-run time `t`,
    /// before normalization by capacity.
    fn demand_at(&self, app: &ApplicationProfile, t: Seconds) -> PerSubsystem {
        let init_end = app.base_runtime * app.serial_frac;
        if t < init_end {
            // Initialization: serial single-core work (e.g. FFTW plan
            // construction) plus input loading from disk; no steady-state
            // pressure on the parallel subsystems yet.
            let mut d = PerSubsystem::ZERO;
            d[Subsystem::Cpu] = (app.demand[Subsystem::Cpu] * 0.9).min(1.0);
            d[Subsystem::Disk] = app.demand[Subsystem::Disk].max(15.0);
            d[Subsystem::Mem] = app.demand[Subsystem::Mem] * 0.2;
            return d;
        }
        let mut d = app.demand;
        if let Some(b) = &app.burst {
            // Redistribute the bursting subsystem's average demand into
            // on/off windows while preserving the average; CPU dips while
            // the burst is active (e.g. blocked on communication).
            let phase = ((t - init_end).value() / b.period.value()).fract();
            let on = phase < b.duty;
            let avg = app.demand[b.subsystem];
            if on {
                d[b.subsystem] = avg / b.duty;
                d[Subsystem::Cpu] *= 0.35;
            } else {
                d[b.subsystem] = 0.0;
                // Compensate CPU so that the run-average CPU demand holds.
                let cpu = app.demand[Subsystem::Cpu];
                d[Subsystem::Cpu] = (cpu - b.duty * cpu * 0.35) / (1.0 - b.duty);
            }
        }
        d
    }

    /// Profile a solo run of `app`, returning 1 Hz utilization samples.
    pub fn profile(&mut self, app: &ApplicationProfile) -> Vec<UtilizationSample> {
        let total = app.base_runtime;
        let period = self.sample_period.value();
        let n = (total.value() / period).floor() as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = Seconds(i as f64 * period);
            let demand = self.demand_at(app, t);
            let util = PerSubsystem::from_fn(|s| {
                let base = demand[s] / self.server.capacity[s];
                let jitter = if self.noise > 0.0 {
                    1.0 + self.rng.gen_range(-self.noise..=self.noise)
                } else {
                    1.0
                };
                (base * jitter).clamp(0.0, 1.0)
            });
            out.push(UtilizationSample { time: t, util });
        }
        out
    }

    /// Average utilization per subsystem over a sample trace.
    pub fn average(samples: &[UtilizationSample]) -> PerSubsystem {
        if samples.is_empty() {
            return PerSubsystem::ZERO;
        }
        let mut sum = PerSubsystem::ZERO;
        for s in samples {
            sum.add(&s.util);
        }
        PerSubsystem::from_fn(|k| sum[k] / samples.len() as f64)
    }

    /// Profile and classify in one step.
    pub fn classify(
        &mut self,
        app: &ApplicationProfile,
        rule: &ClassificationRule,
    ) -> Classification {
        let samples = self.profile(app);
        rule.classify(&Self::average(&samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::ApplicationProfile;

    #[test]
    fn sample_count_matches_runtime() {
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let fftw = ApplicationProfile::fftw();
        let samples = p.profile(&fftw);
        assert_eq!(samples.len(), fftw.base_runtime.value() as usize);
        assert_eq!(samples[0].time, Seconds::ZERO);
    }

    #[test]
    fn utilization_stays_in_unit_interval() {
        let mut p = Profiler::reference(1);
        for app in [
            ApplicationProfile::fftw(),
            ApplicationProfile::sysbench(),
            ApplicationProfile::b_eff_io(),
            ApplicationProfile::mpi_compute_comm(),
        ] {
            for s in p.profile(&app) {
                for (_, u) in s.util.iter() {
                    assert!((0.0..=1.0).contains(&u));
                }
            }
        }
    }

    #[test]
    fn fftw_classifies_cpu_intensive_only() {
        // Fig. 1 (left): a CPU-intensive workload.
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let c = p.classify(&ApplicationProfile::fftw(), &ClassificationRule::default());
        assert_eq!(c.primary, WorkloadType::Cpu);
        assert_eq!(c.intensive, vec![Subsystem::Cpu]);
    }

    #[test]
    fn mpi_workload_is_cpu_cum_network_intensive() {
        // Fig. 1 (right): intensive along both CPU and network.
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let c = p.classify(
            &ApplicationProfile::mpi_compute_comm(),
            &ClassificationRule::default(),
        );
        assert_eq!(c.primary, WorkloadType::Cpu);
        assert!(c.intensive.contains(&Subsystem::Cpu));
        assert!(c.intensive.contains(&Subsystem::Net));
    }

    #[test]
    fn suite_representatives_classify_as_their_declared_type() {
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let rule = ClassificationRule::default();
        for app in [
            ApplicationProfile::fftw(),
            ApplicationProfile::sysbench(),
            ApplicationProfile::b_eff_io(),
            ApplicationProfile::bonnie(),
        ] {
            let c = p.classify(&app, &rule);
            assert_eq!(
                c.primary, app.class,
                "{} classified as {:?}, declared {:?}",
                app.name, c.primary, app.class
            );
        }
    }

    #[test]
    fn burst_pattern_produces_alternating_network_activity() {
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let mpi = ApplicationProfile::mpi_compute_comm();
        let samples = p.profile(&mpi);
        let init_end = (mpi.base_runtime.value() * mpi.serial_frac) as usize;
        let main = &samples[init_end + 1..];
        let active = main.iter().filter(|s| s.util[Subsystem::Net] > 0.0).count();
        let idle = main.len() - active;
        assert!(active > 0 && idle > 0, "network must alternate on/off");
        // Duty cycle roughly matches the declared pattern.
        let duty = active as f64 / main.len() as f64;
        assert!((duty - mpi.burst.unwrap().duty).abs() < 0.05, "duty={duty}");
    }

    #[test]
    fn average_preserved_by_burst_redistribution() {
        // The redistribution must keep the run-average network demand close
        // to the declared average demand.
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let mpi = ApplicationProfile::mpi_compute_comm();
        let samples = p.profile(&mpi);
        let init_end = (mpi.base_runtime.value() * mpi.serial_frac) as usize;
        let main = &samples[init_end + 1..];
        let avg_net: f64 =
            main.iter().map(|s| s.util[Subsystem::Net]).sum::<f64>() / main.len() as f64;
        let declared = mpi.demand[Subsystem::Net] / p.server.capacity[Subsystem::Net];
        assert!(
            (avg_net - declared).abs() / declared < 0.10,
            "avg={avg_net} declared={declared}"
        );
    }

    #[test]
    fn classification_rule_threshold_is_respected() {
        let rule = ClassificationRule { threshold: 0.5 };
        let mut avg = PerSubsystem::ZERO;
        avg[Subsystem::Cpu] = 0.6;
        avg[Subsystem::Disk] = 0.4;
        let c = rule.classify(&avg);
        assert_eq!(c.intensive, vec![Subsystem::Cpu]);
        assert_eq!(c.primary, WorkloadType::Cpu);
    }

    #[test]
    fn init_phase_shows_disk_activity() {
        // The FFTW init phase loads plans/input: disk util must be higher
        // during init than during the pure-compute main phase.
        let mut p = Profiler::ideal(ServerSpec::reference_rack_server());
        let fftw = ApplicationProfile::fftw();
        let samples = p.profile(&fftw);
        let init_end = (fftw.base_runtime.value() * fftw.serial_frac) as usize;
        let disk_init = samples[init_end / 2].util[Subsystem::Disk];
        let disk_main = samples[init_end + 100].util[Subsystem::Disk];
        assert!(disk_init > disk_main);
    }
}
