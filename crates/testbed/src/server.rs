//! Physical server description.
//!
//! The paper's testbed is "Dell servers, each with a Intel quad-core Xeon
//! X3220 processors, 4GB of memory, two hard disks, and two 1Gb Ethernet
//! interfaces ... intended to represent a general-purpose rack server
//! configuration". [`ServerSpec::reference_rack_server`] encodes that
//! machine; the type is fully parametric so heterogeneous fleets (the
//! paper's future-work item) can be simulated too.

use std::fmt;
use std::ops::{Index, IndexMut};

/// The four server subsystems the paper profiles and consolidates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// Processor cores.
    Cpu,
    /// Memory bandwidth (the paper approximates memory activity by L2 cache
    /// misses; we model the induced bandwidth demand directly).
    Mem,
    /// Disk (storage) bandwidth.
    Disk,
    /// Network interface bandwidth.
    Net,
}

impl Subsystem {
    /// All subsystems in canonical order.
    pub const ALL: [Subsystem; 4] = [
        Subsystem::Cpu,
        Subsystem::Mem,
        Subsystem::Disk,
        Subsystem::Net,
    ];

    /// Canonical index within [`Self::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Subsystem::Cpu => 0,
            Subsystem::Mem => 1,
            Subsystem::Disk => 2,
            Subsystem::Net => 3,
        }
    }

    /// Short name used in profiler CSV output.
    pub const fn name(self) -> &'static str {
        match self {
            Subsystem::Cpu => "cpu",
            Subsystem::Mem => "mem",
            Subsystem::Disk => "disk",
            Subsystem::Net => "net",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `[f64; 4]` indexed by [`Subsystem`]; used for capacities, demands and
/// utilizations alike.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerSubsystem(pub [f64; 4]);

impl PerSubsystem {
    /// All-zero vector.
    pub const ZERO: PerSubsystem = PerSubsystem([0.0; 4]);

    /// Build from a closure over subsystems.
    pub fn from_fn(mut f: impl FnMut(Subsystem) -> f64) -> Self {
        let mut out = [0.0; 4];
        for s in Subsystem::ALL {
            out[s.index()] = f(s);
        }
        PerSubsystem(out)
    }

    /// Component-wise addition of another vector.
    pub fn add(&mut self, other: &PerSubsystem) {
        for i in 0..4 {
            self.0[i] += other.0[i];
        }
    }

    /// Iterate `(subsystem, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Subsystem, f64)> + '_ {
        Subsystem::ALL
            .into_iter()
            .map(move |s| (s, self.0[s.index()]))
    }

    /// Sum of all components.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Index<Subsystem> for PerSubsystem {
    type Output = f64;
    #[inline]
    fn index(&self, s: Subsystem) -> &f64 {
        &self.0[s.index()]
    }
}

impl IndexMut<Subsystem> for PerSubsystem {
    #[inline]
    fn index_mut(&mut self, s: Subsystem) -> &mut f64 {
        &mut self.0[s.index()]
    }
}

/// Hardware description of one physical server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Human-readable model name.
    pub name: String,
    /// Subsystem capacities: CPU in cores, memory bandwidth in GB/s, disk
    /// bandwidth in MB/s (aggregate over spindles), network bandwidth in
    /// MB/s (aggregate over NICs).
    pub capacity: PerSubsystem,
    /// Total installed RAM in MB.
    pub ram_mb: f64,
    /// RAM reserved for the hypervisor and dom0; guests share
    /// `ram_mb - dom0_ram_mb`.
    pub dom0_ram_mb: f64,
    /// Static power draw while the server is powered on, regardless of
    /// load. The paper assumes a fixed 125 W.
    pub idle_power_watts: f64,
    /// Peak *additional* dynamic power of each subsystem at full
    /// utilization, in watts.
    pub dynamic_power_watts: PerSubsystem,
}

impl ServerSpec {
    /// The paper's reference machine: quad-core Xeon X3220, 4 GB RAM, two
    /// hard disks (~80 MB/s each), two 1 GbE NICs (~125 MB/s each), 125 W
    /// idle draw and roughly 265 W peak.
    pub fn reference_rack_server() -> Self {
        ServerSpec {
            name: "dell-xeon-x3220".to_string(),
            capacity: PerSubsystem([4.0, 6.0, 160.0, 250.0]),
            ram_mb: 4096.0,
            dom0_ram_mb: 512.0,
            idle_power_watts: 125.0,
            dynamic_power_watts: PerSubsystem([90.0, 25.0, 15.0, 10.0]),
        }
    }

    /// A beefier dual-socket machine used by the heterogeneous-fleet
    /// ablation (the paper's future-work item i): twice the cores and RAM,
    /// higher bandwidths, higher idle draw.
    pub fn big_node() -> Self {
        ServerSpec {
            name: "dual-socket-bignode".to_string(),
            capacity: PerSubsystem([8.0, 12.0, 320.0, 500.0]),
            ram_mb: 8192.0,
            dom0_ram_mb: 512.0,
            idle_power_watts: 210.0,
            dynamic_power_watts: PerSubsystem([160.0, 40.0, 25.0, 15.0]),
        }
    }

    /// RAM available to guest VMs (total minus dom0 reservation), MB.
    #[inline]
    pub fn guest_ram_mb(&self) -> f64 {
        (self.ram_mb - self.dom0_ram_mb).max(0.0)
    }

    /// Number of physical cores (CPU-slot count used by the FIRST-FIT
    /// baselines).
    #[inline]
    pub fn cpu_slots(&self) -> u32 {
        self.capacity[Subsystem::Cpu].round() as u32
    }

    /// Peak possible power draw (idle + all subsystems saturated), watts.
    pub fn peak_power_watts(&self) -> f64 {
        self.idle_power_watts + self.dynamic_power_watts.sum()
    }

    /// Validate internal consistency (positive capacities, RAM budget).
    pub fn validate(&self) -> Result<(), String> {
        for (s, c) in self.capacity.iter() {
            if c.is_nan() || c <= 0.0 {
                return Err(format!("capacity of {s} must be positive, got {c}"));
            }
        }
        if self.guest_ram_mb() <= 0.0 {
            return Err(format!(
                "guest RAM must be positive: ram={} dom0={}",
                self.ram_mb, self.dom0_ram_mb
            ));
        }
        if self.idle_power_watts < 0.0 {
            return Err("idle power must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self::reference_rack_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_server_matches_paper() {
        let s = ServerSpec::reference_rack_server();
        assert_eq!(s.cpu_slots(), 4);
        assert_eq!(s.ram_mb, 4096.0);
        assert_eq!(s.idle_power_watts, 125.0);
        assert!(s.validate().is_ok());
        assert!(s.peak_power_watts() > 250.0 && s.peak_power_watts() < 280.0);
    }

    #[test]
    fn guest_ram_excludes_dom0() {
        let s = ServerSpec::reference_rack_server();
        assert_eq!(s.guest_ram_mb(), 4096.0 - 512.0);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = ServerSpec::reference_rack_server();
        s.capacity[Subsystem::Disk] = 0.0;
        assert!(s.validate().is_err());

        let mut s = ServerSpec::reference_rack_server();
        s.dom0_ram_mb = 5000.0;
        assert!(s.validate().is_err());

        let mut s = ServerSpec::reference_rack_server();
        s.idle_power_watts = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn subsystem_indexing() {
        let mut v = PerSubsystem::ZERO;
        v[Subsystem::Net] = 42.0;
        assert_eq!(v[Subsystem::Net], 42.0);
        assert_eq!(v.sum(), 42.0);
        let w = PerSubsystem::from_fn(|s| s.index() as f64);
        assert_eq!(w.0, [0.0, 1.0, 2.0, 3.0]);
        let mut acc = v;
        acc.add(&w);
        assert_eq!(acc[Subsystem::Net], 45.0);
    }

    #[test]
    fn subsystem_names_and_order() {
        let names: Vec<&str> = Subsystem::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["cpu", "mem", "disk", "net"]);
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn big_node_is_bigger() {
        let small = ServerSpec::reference_rack_server();
        let big = ServerSpec::big_node();
        assert!(big.cpu_slots() > small.cpu_slots());
        assert!(big.peak_power_watts() > small.peak_power_watts());
        assert!(big.validate().is_ok());
    }
}
