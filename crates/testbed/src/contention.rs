//! The analytic co-location model.
//!
//! This is the synthetic stand-in for the physics of the paper's testbed:
//! given a set of single-process VMs co-located on one server, it projects
//! each VM's execution time and the server's instantaneous power draw. The
//! model composes three effects observed in the paper's measurements:
//!
//! 1. **Phase-weighted subsystem contention.** When the aggregate demand on
//!    subsystem *k* exceeds its capacity, every VM's *k*-bound phases
//!    stretch by the pressure ratio. A VM's overall slowdown is the
//!    weighted sum of per-subsystem stretches, weighted by the fraction of
//!    its solo runtime bound on each subsystem — this is what makes the
//!    model *application-centric*: a CPU-bound VM barely notices disk
//!    saturation and vice versa, so "compatible" VMs consolidate cheaply.
//! 2. **Per-VM virtualization interference.** Xen scheduling, cache and
//!    TLB pollution grow with the number of resident VMs; modelled as a
//!    linear factor `1 + v·(n−1)`.
//! 3. **Memory thrashing.** Once the sum of guest footprints exceeds the
//!    RAM available to guests, the hypervisor swaps; execution time grows
//!    steeply (square-root onset, which matches the "increases
//!    significantly" cliff past 11 FFTW VMs in Fig. 2).
//!
//! Serial initialization phases (`serial_frac`) do not contend.

use eavm_types::Seconds;

use crate::application::ApplicationProfile;
use crate::server::{PerSubsystem, ServerSpec, Subsystem};

/// Tunable coefficients of the co-location model.
///
/// The defaults are calibrated (see `tests::fig2_calibration`) so that the
/// FFTW profile reproduces Fig. 2: shortest average execution time at ~9
/// VMs per server, significant degradation past 11.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionModel {
    /// Per-additional-VM interference factor `v` (Xen scheduling, shared
    /// cache/TLB pollution).
    pub interference_per_vm: f64,
    /// Thrashing coefficient: the multiplicative penalty is
    /// `1 + thrash_coeff * sqrt(oversubscription_ratio)`.
    pub thrash_coeff: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            interference_per_vm: 0.055,
            thrash_coeff: 4.5,
        }
    }
}

impl ContentionModel {
    /// Aggregate subsystem pressure ratios `r_k = Σ demand_k / capacity_k`
    /// for a set of co-located VMs.
    pub fn pressure(server: &ServerSpec, vms: &[&ApplicationProfile]) -> PerSubsystem {
        let mut load = PerSubsystem::ZERO;
        for vm in vms {
            load.add(&vm.demand);
        }
        PerSubsystem::from_fn(|s| load[s] / server.capacity[s])
    }

    /// Effective utilization of each subsystem (pressure clamped to 1);
    /// feeds the power model.
    pub fn utilization(server: &ServerSpec, vms: &[&ApplicationProfile]) -> PerSubsystem {
        let r = Self::pressure(server, vms);
        PerSubsystem::from_fn(|s| r[s].min(1.0))
    }

    /// RAM oversubscription ratio: `max(0, (Σ footprints − guest RAM) /
    /// guest RAM)`.
    pub fn oversubscription(server: &ServerSpec, vms: &[&ApplicationProfile]) -> f64 {
        let footprint: f64 = vms.iter().map(|v| v.mem_footprint_mb).sum();
        let budget = server.guest_ram_mb();
        ((footprint - budget) / budget).max(0.0)
    }

    /// The thrashing penalty factor for a set of VMs (≥ 1).
    pub fn thrash_factor(&self, server: &ServerSpec, vms: &[&ApplicationProfile]) -> f64 {
        1.0 + self.thrash_coeff * Self::oversubscription(server, vms).sqrt()
    }

    /// The virtualization interference factor for `n` resident VMs (≥ 1).
    #[inline]
    pub fn interference_factor(&self, n: usize) -> f64 {
        1.0 + self.interference_per_vm * (n.saturating_sub(1) as f64)
    }

    /// Phase-weighted contention slowdown of VM `i` within the set (≥ 1).
    pub fn contention_slowdown(server: &ServerSpec, vms: &[&ApplicationProfile], i: usize) -> f64 {
        let r = Self::pressure(server, vms);
        let me = vms[i];
        Subsystem::ALL
            .into_iter()
            .map(|s| me.phase_weights[s] * r[s].max(1.0))
            .sum()
    }

    /// Projected execution time of VM `i` when the whole set `vms` runs
    /// together for its full duration.
    pub fn projected_time(
        &self,
        server: &ServerSpec,
        vms: &[&ApplicationProfile],
        i: usize,
    ) -> Seconds {
        let me = vms[i];
        let slow = Self::contention_slowdown(server, vms, i);
        let ovh = self.interference_factor(vms.len());
        let thrash = self.thrash_factor(server, vms);
        let stretched = me.serial_frac + (1.0 - me.serial_frac) * slow;
        me.base_runtime * (stretched * ovh * thrash)
    }

    /// Projected execution times of every VM in the set.
    pub fn projected_times(
        &self,
        server: &ServerSpec,
        vms: &[&ApplicationProfile],
    ) -> Vec<Seconds> {
        (0..vms.len())
            .map(|i| self.projected_time(server, vms, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::ApplicationProfile;

    fn server() -> ServerSpec {
        ServerSpec::reference_rack_server()
    }

    #[test]
    fn solo_vm_runs_at_base_speed() {
        let m = ContentionModel::default();
        let fftw = ApplicationProfile::fftw();
        let t = m.projected_time(&server(), &[&fftw], 0);
        assert!(
            (t.value() - fftw.base_runtime.value()).abs() < 1e-9,
            "solo run must take the base runtime, got {t}"
        );
    }

    #[test]
    fn pressure_is_additive() {
        let fftw = ApplicationProfile::fftw();
        let vms = vec![&fftw, &fftw, &fftw, &fftw];
        let r = ContentionModel::pressure(&server(), &vms);
        assert!((r[Subsystem::Cpu] - 1.0).abs() < 1e-12, "4 cores, 4 VMs");
        let vms8: Vec<_> = std::iter::repeat_n(&fftw, 8).collect();
        let r8 = ContentionModel::pressure(&server(), &vms8);
        assert!((r8[Subsystem::Cpu] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let fftw = ApplicationProfile::fftw();
        let vms: Vec<_> = std::iter::repeat_n(&fftw, 8).collect();
        let u = ContentionModel::utilization(&server(), &vms);
        assert_eq!(u[Subsystem::Cpu], 1.0);
        assert!(u[Subsystem::Mem] < 1.0);
    }

    #[test]
    fn times_grow_monotonically_with_colocated_count() {
        let m = ContentionModel::default();
        let fftw = ApplicationProfile::fftw();
        let mut prev = Seconds::ZERO;
        for n in 1..=16 {
            let vms: Vec<_> = std::iter::repeat_n(&fftw, n).collect();
            let t = m.projected_time(&server(), &vms, 0);
            assert!(t > prev, "time must grow with co-location: n={n}");
            prev = t;
        }
    }

    /// The Fig. 2 calibration: average execution time (projected time / n)
    /// of FFTW is minimized in the 8..=10 range, exceeds the minimum by
    /// >40 % at 12 VMs, and approaches the sequential average (the solo
    /// > runtime) by 16 VMs.
    #[test]
    fn fig2_calibration() {
        let m = ContentionModel::default();
        let fftw = ApplicationProfile::fftw();
        let avg = |n: usize| {
            let vms: Vec<_> = std::iter::repeat_n(&fftw, n).collect();
            m.projected_time(&server(), &vms, 0).value() / n as f64
        };
        let best_n = (1..=16)
            .min_by(|&a, &b| avg(a).partial_cmp(&avg(b)).unwrap())
            .unwrap();
        assert!(
            (8..=10).contains(&best_n),
            "optimal FFTW consolidation should be ~9 VMs, got {best_n}"
        );
        assert!(
            avg(12) > 1.4 * avg(best_n),
            "past 11 VMs the average time must degrade significantly: avg(12)={} vs avg({best_n})={}",
            avg(12),
            avg(best_n)
        );
        assert!(
            avg(16) > 0.55 * fftw.base_runtime.value(),
            "by 16 VMs the average time should approach sequential execution"
        );
    }

    #[test]
    fn memory_intensive_vms_thrash_much_earlier() {
        let m = ContentionModel::default();
        let sys = ApplicationProfile::sysbench();
        let four: Vec<_> = std::iter::repeat_n(&sys, 4).collect();
        let five: Vec<_> = std::iter::repeat_n(&sys, 5).collect();
        assert_eq!(ContentionModel::oversubscription(&server(), &four), 0.0);
        assert!(ContentionModel::oversubscription(&server(), &five) > 0.0);
        assert!(m.thrash_factor(&server(), &five) > 1.2);
    }

    #[test]
    fn compatible_mixes_contend_less_than_clones() {
        // Application-centric thesis: a CPU VM + an IO VM slow each other
        // down less than two CPU VMs at the saturation point.
        let m = ContentionModel::default();
        let fftw = ApplicationProfile::fftw();
        let io = ApplicationProfile::bonnie();
        let srv = server();

        // Saturate CPU with 5 FFTW clones, then compare adding a 6th clone
        // vs adding an IO VM.
        let base: Vec<&ApplicationProfile> = std::iter::repeat_n(&fftw, 5).collect();
        let mut clones = base.clone();
        clones.push(&fftw);
        let mut mixed = base.clone();
        mixed.push(&io);

        let t_clone = m.projected_time(&srv, &clones, 0);
        let t_mixed = m.projected_time(&srv, &mixed, 0);
        assert!(
            t_mixed < t_clone,
            "adding a compatible IO VM must hurt the CPU VM less than another CPU clone \
             ({t_mixed} vs {t_clone})"
        );
    }

    #[test]
    fn serial_fraction_shields_init_phase() {
        let m = ContentionModel::default();
        let srv = server();
        let mut eager = ApplicationProfile::fftw();
        eager.serial_frac = 0.0;
        let lazy = ApplicationProfile::fftw(); // serial_frac = 0.5

        let eager_vms: Vec<_> = std::iter::repeat_n(&eager, 8).collect();
        let lazy_vms: Vec<_> = std::iter::repeat_n(&lazy, 8).collect();
        let t_eager = m.projected_time(&srv, &eager_vms, 0) / eager.base_runtime;
        let t_lazy = m.projected_time(&srv, &lazy_vms, 0) / lazy.base_runtime;
        assert!(
            t_lazy < t_eager,
            "a large serial fraction must damp contention stretch"
        );
    }

    #[test]
    fn interference_factor_shape() {
        let m = ContentionModel::default();
        assert_eq!(m.interference_factor(1), 1.0);
        assert!(m.interference_factor(2) > 1.0);
        assert!(m.interference_factor(10) > m.interference_factor(5));
    }
}
