//! Deterministic overload control for the allocation service.
//!
//! Four cooperating mechanisms, all driven by the service's *logical*
//! clock (no wall time anywhere — the same stream of events always
//! produces the same control decisions):
//!
//! * **AIMD concurrency limiter** — one floating admission limit per
//!   shard. An on-deadline admission raises the involved shards'
//!   limits additively; a late admission or an overload shed cuts
//!   multiplicatively. The limit steers routing (prefer under-limit
//!   shards) and feeds brownout pressure; it never blocks a physically
//!   feasible placement outright.
//! * **CoDel-style queue aging** — a parked request whose sojourn has
//!   exceeded the target for a full interval is shed (`QueueAged`), so
//!   stale work cannot starve fresh work.
//! * **Circuit breaker** — a seeded probe process mirrors the
//!   model-lookup fault stream: enough consecutive failing probes open
//!   the breaker, a logical-clock cooldown moves it to half-open, and a
//!   single probe then closes or re-opens it. An open breaker raises
//!   the brownout rung so a degraded model DB sheds load early.
//! * **Priority brownout ladder** — requests carry a [`Priority`]
//!   class; under pressure rung 1 sheds `Batch`, rung 2 also sheds
//!   `Standard`, and `Interactive` is never brownout-shed.
//!
//! # Determinism contract
//!
//! [`OverloadPlane`] state mutates **only** in the event hooks
//! ([`on_submit`], [`on_clock`], [`on_admitted`], [`on_shed`]), each of
//! which corresponds 1:1 to a journaled WAL record. The live
//! coordinator calls a hook immediately after the matching record is
//! appended; crash recovery calls the identical hook while replaying
//! the WAL tail. Plane state is therefore a pure function of the
//! journaled event stream, and a recovered service re-derives limiter,
//! breaker, and clock state bit-exactly — nothing is journaled ad hoc.
//! Decision helpers ([`queue_aged`], [`rung`], [`under_limit`]) are
//! pure reads used only on the live path; replay re-applies journaled
//! verdicts and never re-decides.
//!
//! [`on_submit`]: OverloadPlane::on_submit
//! [`on_clock`]: OverloadPlane::on_clock
//! [`on_admitted`]: OverloadPlane::on_admitted
//! [`on_shed`]: OverloadPlane::on_shed
//! [`queue_aged`]: OverloadPlane::queue_aged
//! [`rung`]: OverloadPlane::rung
//! [`under_limit`]: OverloadPlane::under_limit

#![forbid(unsafe_code)]

/// SplitMix64 finalizer (inlined so this crate stays dependency-free;
/// bit-identical to `eavm_faults::mix64`, which the breaker's probe
/// stream deliberately mirrors).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Scheduling class carried on every request. Under overload the
/// brownout ladder sheds `Batch` first, then `Standard`; `Interactive`
/// is only ever refused by physical infeasibility, never by brownout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput-oriented background work; first to go.
    Batch,
    /// The default class.
    Standard,
    /// Latency-sensitive foreground work; shed last.
    Interactive,
}

impl Priority {
    /// Every class, in shedding order (first shed first).
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Standard, Priority::Interactive];

    /// Stable wire index (0 = Batch, 1 = Standard, 2 = Interactive).
    pub fn index(self) -> usize {
        match self {
            Priority::Batch => 0,
            Priority::Standard => 1,
            Priority::Interactive => 2,
        }
    }

    /// Inverse of [`Priority::index`], modulo the class count.
    pub fn from_index(index: usize) -> Priority {
        Priority::ALL[index % Priority::ALL.len()]
    }

    /// Stable lowercase name for logs and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Standard => "standard",
            Priority::Interactive => "interactive",
        }
    }
}

/// Circuit-breaker state around model-database lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Lookups flow normally; consecutive failing probes are counted.
    Closed,
    /// Tripped: the brownout rung is raised until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next probe closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire index (0 = Closed, 1 = Open, 2 = HalfOpen).
    pub fn index(self) -> usize {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    /// Inverse of [`BreakerState::index`]; unknown indices are Closed.
    pub fn from_index(index: usize) -> BreakerState {
        match index {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Stable lowercase name for logs.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Knobs for the overload-control plane. A zero `initial_limit` or
/// `max_limit` means "derive from fleet shape" (see
/// [`OverloadConfig::resolve`]); everything else is taken literally.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Starting per-shard admission limit (resident VMs). `0.0` ⇒
    /// 4 × servers-per-shard at resolve time.
    pub initial_limit: f64,
    /// Floor the multiplicative cut can never go below.
    pub min_limit: f64,
    /// Ceiling the additive raise can never exceed. `0.0` ⇒
    /// 16 × servers-per-shard at resolve time.
    pub max_limit: f64,
    /// Additive raise per on-deadline admission (VM slots).
    pub additive_step: f64,
    /// Multiplicative factor applied on a late admission or an
    /// overload shed, in `(0, 1)`.
    pub multiplicative_cut: f64,
    /// CoDel target sojourn for parked requests, virtual seconds.
    pub queue_target: f64,
    /// CoDel interval: a parked request is shed once its sojourn has
    /// exceeded the target for this long, virtual seconds.
    pub queue_interval: f64,
    /// Consecutive failing probes that open the breaker.
    pub breaker_threshold: u32,
    /// Virtual seconds the breaker stays open before half-open.
    pub breaker_cooldown: f64,
    /// Seed of the breaker's probe stream (mirrors the lookup-fault
    /// stream when the service derives it from an armed fault plan).
    pub breaker_seed: u64,
    /// Per-probe failure probability in `[0, 1]`; `0.0` disables the
    /// breaker entirely.
    pub breaker_rate: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            initial_limit: 0.0,
            min_limit: 1.0,
            max_limit: 0.0,
            additive_step: 1.0,
            multiplicative_cut: 0.5,
            queue_target: 60.0,
            queue_interval: 120.0,
            breaker_threshold: 8,
            breaker_cooldown: 600.0,
            breaker_seed: 0,
            breaker_rate: 0.0,
        }
    }
}

impl OverloadConfig {
    /// Fill the `0.0 ⇒ auto` fields from the fleet shape.
    pub fn resolve(mut self, servers_per_shard: usize) -> Self {
        let span = servers_per_shard.max(1) as f64;
        if self.initial_limit <= 0.0 {
            self.initial_limit = span * 4.0;
        }
        if self.max_limit <= 0.0 {
            self.max_limit = span * 16.0;
        }
        self
    }

    /// Arm the breaker's probe stream.
    pub fn with_breaker_stream(mut self, seed: u64, rate: f64) -> Self {
        self.breaker_seed = seed;
        self.breaker_rate = rate;
        self
    }

    /// Validate invariants (call after [`OverloadConfig::resolve`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.min_limit.is_nan() || self.min_limit < 1.0 {
            return Err("overload min_limit must be at least 1".into());
        }
        if !(self.initial_limit >= self.min_limit && self.max_limit >= self.initial_limit) {
            return Err("overload limits must satisfy min <= initial <= max".into());
        }
        if self.additive_step.is_nan() || self.additive_step <= 0.0 {
            return Err("overload additive_step must be positive".into());
        }
        if !(self.multiplicative_cut > 0.0 && self.multiplicative_cut < 1.0) {
            return Err("overload multiplicative_cut must lie in (0, 1)".into());
        }
        if !(self.queue_target > 0.0 && self.queue_interval > 0.0) {
            return Err("overload queue target and interval must be positive".into());
        }
        if self.breaker_threshold == 0 {
            return Err("overload breaker_threshold must be at least 1".into());
        }
        if self.breaker_cooldown.is_nan() || self.breaker_cooldown <= 0.0 {
            return Err("overload breaker_cooldown must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.breaker_rate) {
            return Err("overload breaker_rate must lie in [0, 1]".into());
        }
        Ok(())
    }
}

/// A point-in-time copy of the plane's controller state, surfaced in
/// service stats and compared byte-for-byte by the recovery tests.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadSnapshot {
    /// Per-shard AIMD admission limits.
    pub limits: Vec<f64>,
    /// Breaker state.
    pub breaker: BreakerState,
    /// Consecutive failing probes while closed.
    pub breaker_streak: u32,
    /// Probes drawn from the breaker's seeded stream so far.
    pub probes: u64,
    /// The plane's logical clock (max over submit/clock events seen).
    pub now: f64,
}

/// The overload-control plane. See the crate docs for the determinism
/// contract: state changes only inside the four event hooks, each tied
/// to one journaled WAL record kind.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPlane {
    cfg: OverloadConfig,
    /// `breaker_rate` mapped onto the u64 range, the same mapping the
    /// lookup-fault predicate uses (1.0 saturates).
    probe_threshold: u64,
    limits: Vec<f64>,
    breaker: BreakerState,
    streak: u32,
    opened_at: f64,
    probes: u64,
    now: f64,
}

impl OverloadPlane {
    /// A fresh plane for `shards` shards. `cfg` must already be
    /// resolved; limits start at `cfg.initial_limit`.
    pub fn new(cfg: OverloadConfig, shards: usize) -> Self {
        let rate = cfg.breaker_rate.clamp(0.0, 1.0);
        let probe_threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        OverloadPlane {
            limits: vec![cfg.initial_limit; shards],
            probe_threshold,
            cfg,
            breaker: BreakerState::Closed,
            streak: 0,
            opened_at: 0.0,
            probes: 0,
            now: 0.0,
        }
    }

    /// The configuration the plane runs under.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    // -- event hooks (1:1 with journaled WAL records) ------------------

    /// A `Submit` record became durable: advance the logical clock,
    /// settle the breaker cooldown, and draw one breaker probe.
    pub fn on_submit(&mut self, submit: f64) {
        self.now = self.now.max(submit);
        self.settle_breaker();
        self.probe();
    }

    /// A `Clock` record became durable: advance the logical clock and
    /// settle the breaker cooldown.
    pub fn on_clock(&mut self, t: f64) {
        self.now = self.now.max(t);
        self.settle_breaker();
    }

    /// An `Admitted`/`AdmittedCrossShard` record became durable for a
    /// request submitted at `submit` with deadline `deadline`: raise
    /// the involved shards' limits if the admission sojourn met the
    /// deadline, cut them otherwise.
    pub fn on_admitted(&mut self, shards: &[usize], submit: f64, deadline: f64) {
        let on_time = self.now - submit <= deadline;
        for &shard in shards {
            if shard >= self.limits.len() {
                continue;
            }
            if on_time {
                self.limits[shard] =
                    (self.limits[shard] + self.cfg.additive_step).min(self.cfg.max_limit);
            } else {
                self.limits[shard] =
                    (self.limits[shard] * self.cfg.multiplicative_cut).max(self.cfg.min_limit);
            }
        }
    }

    /// A `Shed` record became durable. `cuts` is true for overload
    /// sheds (wait-queue-full, queue-aged): those cut every shard's
    /// limit. Policy sheds (brownout) must NOT cut — cutting on the
    /// ladder's own decisions is a positive-feedback death spiral.
    pub fn on_shed(&mut self, cuts: bool) {
        if !cuts {
            return;
        }
        for limit in &mut self.limits {
            *limit = (*limit * self.cfg.multiplicative_cut).max(self.cfg.min_limit);
        }
    }

    /// Open → HalfOpen once the cooldown has elapsed. Called lazily
    /// from the clock-bearing hooks.
    fn settle_breaker(&mut self) {
        if self.breaker == BreakerState::Open
            && self.now >= self.opened_at + self.cfg.breaker_cooldown
        {
            self.breaker = BreakerState::HalfOpen;
        }
    }

    /// Draw one probe from the seeded stream (skipped while open: the
    /// circuit is bypassing lookups, so there is nothing to observe).
    fn probe(&mut self) {
        if self.probe_threshold == 0 || self.breaker == BreakerState::Open {
            return;
        }
        let k = self.probes;
        self.probes += 1;
        let failed = mix64(self.cfg.breaker_seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            < self.probe_threshold;
        match self.breaker {
            BreakerState::Closed => {
                if failed {
                    self.streak += 1;
                    if self.streak >= self.cfg.breaker_threshold {
                        self.breaker = BreakerState::Open;
                        self.opened_at = self.now;
                    }
                } else {
                    self.streak = 0;
                }
            }
            BreakerState::HalfOpen => {
                if failed {
                    self.breaker = BreakerState::Open;
                    self.opened_at = self.now;
                } else {
                    self.breaker = BreakerState::Closed;
                    self.streak = 0;
                }
            }
            BreakerState::Open => {}
        }
    }

    // -- decision helpers (pure reads; live admission path only) -------

    /// The plane's logical clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Current AIMD limit for `shard` (infinite for unknown shards, so
    /// they never look preferable by accident).
    pub fn limit(&self, shard: usize) -> f64 {
        self.limits.get(shard).copied().unwrap_or(f64::INFINITY)
    }

    /// Whether `shard` is under its AIMD limit at `resident` VMs.
    pub fn under_limit(&self, shard: usize, resident: usize) -> bool {
        (resident as f64) < self.limit(shard)
    }

    /// Current breaker state.
    pub fn breaker(&self) -> BreakerState {
        self.breaker
    }

    /// Whether a request parked at `parked_at` has aged out: its
    /// sojourn exceeded the target for a full interval.
    pub fn queue_aged(&self, parked_at: f64) -> bool {
        self.now >= parked_at + self.cfg.queue_target + self.cfg.queue_interval
    }

    /// The brownout rung given per-shard resident counts and the wait
    /// queue's fill. Rung 0: admit everything. Rung 1 (every shard at
    /// or over its limit, or breaker open): shed Batch. Rung 2 (limit
    /// pressure plus a half-full queue, or both signals): also shed
    /// Standard. Interactive is never brownout-shed at any rung.
    pub fn rung(&self, residents: &[usize], parked: usize, queue_capacity: usize) -> u8 {
        let pressured = !residents.is_empty()
            && residents
                .iter()
                .enumerate()
                .all(|(shard, &resident)| resident as f64 >= self.limit(shard));
        let mut rung = 0u8;
        if pressured {
            rung += 1;
            if parked.saturating_mul(2) >= queue_capacity.max(1) {
                rung += 1;
            }
        }
        if self.breaker == BreakerState::Open {
            rung += 1;
        }
        rung.min(2)
    }

    /// Whether the ladder sheds `priority` at `rung`.
    pub fn sheds_class(rung: u8, priority: Priority) -> bool {
        match priority {
            Priority::Batch => rung >= 1,
            Priority::Standard => rung >= 2,
            Priority::Interactive => false,
        }
    }

    // -- persistence ---------------------------------------------------

    /// Prefix of the reserved snapshot-counter names the plane saves
    /// its scalar state under (the same channel consolidation cooldowns
    /// use); recovery strips them back out before seeding counters.
    pub const COUNTER_PREFIX: &'static str = "overload_";

    /// Append the plane's scalar state as reserved counter entries
    /// (f64s as raw bits, so restore is bit-exact).
    pub fn save(&self, out: &mut Vec<(String, u64)>) {
        out.push(("overload_now".into(), self.now.to_bits()));
        out.push(("overload_probes".into(), self.probes));
        out.push(("overload_breaker".into(), self.breaker.index() as u64));
        out.push(("overload_streak".into(), u64::from(self.streak)));
        out.push(("overload_opened_at".into(), self.opened_at.to_bits()));
        for (shard, limit) in self.limits.iter().enumerate() {
            out.push((format!("overload_limit_{shard}"), limit.to_bits()));
        }
    }

    /// Absorb one reserved counter entry; returns `true` when the name
    /// belonged to the plane (the caller must then drop it).
    pub fn load(&mut self, name: &str, value: u64) -> bool {
        let Some(rest) = name.strip_prefix(Self::COUNTER_PREFIX) else {
            return false;
        };
        match rest {
            "now" => self.now = f64::from_bits(value),
            "probes" => self.probes = value,
            "breaker" => {
                self.breaker = BreakerState::from_index(usize::try_from(value).unwrap_or(0))
            }
            "streak" => self.streak = u32::try_from(value).unwrap_or(u32::MAX),
            "opened_at" => self.opened_at = f64::from_bits(value),
            _ => {
                if let Some(shard) = rest
                    .strip_prefix("limit_")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    if shard < self.limits.len() {
                        self.limits[shard] = f64::from_bits(value);
                    }
                }
            }
        }
        true
    }

    /// A copy of the controller state for stats and parity tests.
    pub fn snapshot(&self) -> OverloadSnapshot {
        OverloadSnapshot {
            limits: self.limits.clone(),
            breaker: self.breaker,
            breaker_streak: self.streak,
            probes: self.probes,
            now: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolved() -> OverloadConfig {
        OverloadConfig::default().resolve(4)
    }

    #[test]
    fn priority_indices_round_trip() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_index(p.index()), p);
            assert!(!p.name().is_empty());
        }
        assert_eq!(Priority::from_index(7), Priority::Standard);
    }

    #[test]
    fn breaker_state_indices_round_trip() {
        for s in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ] {
            assert_eq!(BreakerState::from_index(s.index()), s);
        }
        assert_eq!(BreakerState::from_index(9), BreakerState::Closed);
    }

    #[test]
    fn config_resolution_and_validation() {
        let cfg = resolved();
        assert_eq!(cfg.initial_limit, 16.0);
        assert_eq!(cfg.max_limit, 64.0);
        assert!(cfg.validate().is_ok());

        let mut bad = resolved();
        bad.multiplicative_cut = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = resolved();
        bad.min_limit = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = resolved();
        bad.queue_target = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = resolved();
        bad.breaker_threshold = 0;
        assert!(bad.validate().is_err());
        let mut bad = resolved();
        bad.breaker_rate = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn aimd_raises_additively_and_cuts_multiplicatively() {
        let mut plane = OverloadPlane::new(resolved(), 2);
        plane.on_submit(100.0);
        // On-deadline admission on shard 0: +1.
        plane.on_admitted(&[0], 100.0, 1e6);
        assert_eq!(plane.limit(0), 17.0);
        assert_eq!(plane.limit(1), 16.0);
        // Late admission cuts shard 1 by half.
        plane.on_admitted(&[1], 0.0, 1.0);
        assert_eq!(plane.limit(1), 8.0);
        // Overload shed cuts everything; brownout shed cuts nothing.
        plane.on_shed(true);
        assert_eq!(plane.limit(0), 8.5);
        assert_eq!(plane.limit(1), 4.0);
        plane.on_shed(false);
        assert_eq!(plane.limit(0), 8.5);
    }

    #[test]
    fn aimd_limits_are_clamped() {
        let mut plane = OverloadPlane::new(resolved(), 1);
        plane.on_submit(0.0);
        for _ in 0..1000 {
            plane.on_admitted(&[0], 0.0, 1e9);
        }
        assert_eq!(plane.limit(0), 64.0);
        for _ in 0..1000 {
            plane.on_shed(true);
        }
        assert_eq!(plane.limit(0), 1.0);
        // Unknown shards are never preferable and never panic.
        assert_eq!(plane.limit(9), f64::INFINITY);
        plane.on_admitted(&[9], 0.0, 1e9);
    }

    #[test]
    fn breaker_opens_cools_down_and_recloses() {
        let mut cfg = resolved().with_breaker_stream(7, 1.0);
        cfg.breaker_threshold = 3;
        cfg.breaker_cooldown = 100.0;
        let mut plane = OverloadPlane::new(cfg, 1);
        // Every probe fails at rate 1.0: three submits open the breaker.
        plane.on_submit(10.0);
        plane.on_submit(11.0);
        assert_eq!(plane.breaker(), BreakerState::Closed);
        plane.on_submit(12.0);
        assert_eq!(plane.breaker(), BreakerState::Open);
        let probes_when_open = plane.snapshot().probes;
        // While open no probes are drawn.
        plane.on_submit(50.0);
        assert_eq!(plane.snapshot().probes, probes_when_open);
        assert_eq!(plane.breaker(), BreakerState::Open);
        // Cooldown elapses on a clock advance; the next submit probes
        // half-open and (still failing) re-opens at the new instant.
        plane.on_clock(112.0);
        assert_eq!(plane.breaker(), BreakerState::HalfOpen);
        plane.on_submit(113.0);
        assert_eq!(plane.breaker(), BreakerState::Open);

        // A never-failing stream closes from half-open.
        let mut cfg = resolved().with_breaker_stream(7, 1.0);
        cfg.breaker_threshold = 1;
        cfg.breaker_cooldown = 10.0;
        let mut plane = OverloadPlane::new(cfg, 1);
        plane.on_submit(0.0);
        assert_eq!(plane.breaker(), BreakerState::Open);
        plane.on_clock(20.0);
        plane.probe_threshold = 0; // disable stream: probes cannot fail
        plane.on_submit(21.0);
        // Disabled stream draws no probe at all; still half-open.
        assert_eq!(plane.breaker(), BreakerState::HalfOpen);
        plane.probe_threshold = 1; // nearly-never-failing stream
        plane.on_submit(22.0);
        assert_eq!(plane.breaker(), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut plane = OverloadPlane::new(resolved(), 2);
        for i in 0..10_000 {
            plane.on_submit(i as f64);
        }
        assert_eq!(plane.breaker(), BreakerState::Closed);
        assert_eq!(plane.snapshot().probes, 0);
    }

    #[test]
    fn queue_aging_requires_target_plus_interval() {
        let mut plane = OverloadPlane::new(resolved(), 1);
        plane.on_clock(100.0);
        // target 60 + interval 120 = 180 virtual seconds of sojourn.
        assert!(!plane.queue_aged(100.0));
        plane.on_clock(279.0);
        assert!(!plane.queue_aged(100.0));
        plane.on_clock(280.0);
        assert!(plane.queue_aged(100.0));
    }

    #[test]
    fn brownout_ladder_sheds_in_priority_order() {
        let mut plane = OverloadPlane::new(resolved(), 2);
        // Under limit: rung 0, nothing shed.
        assert_eq!(plane.rung(&[3, 3], 0, 8), 0);
        for p in Priority::ALL {
            assert!(!OverloadPlane::sheds_class(0, p));
        }
        // Every shard at its limit: rung 1, Batch shed.
        assert_eq!(plane.rung(&[16, 16], 0, 8), 1);
        assert!(OverloadPlane::sheds_class(1, Priority::Batch));
        assert!(!OverloadPlane::sheds_class(1, Priority::Standard));
        // One shard under limit is enough to stay at rung 0.
        assert_eq!(plane.rung(&[16, 3], 7, 8), 0);
        // Limit pressure plus a half-full queue: rung 2.
        assert_eq!(plane.rung(&[16, 16], 4, 8), 2);
        assert!(OverloadPlane::sheds_class(2, Priority::Standard));
        assert!(!OverloadPlane::sheds_class(2, Priority::Interactive));
        // An open breaker raises the rung on its own.
        plane.breaker = BreakerState::Open;
        assert_eq!(plane.rung(&[3, 3], 0, 8), 1);
        assert_eq!(plane.rung(&[16, 16], 4, 8), 2);
    }

    #[test]
    fn save_load_round_trips_bit_exact() {
        let mut cfg = resolved().with_breaker_stream(99, 0.9);
        cfg.breaker_threshold = 2;
        let mut plane = OverloadPlane::new(cfg.clone(), 3);
        for i in 0..40 {
            plane.on_submit(i as f64 * 3.5);
            plane.on_admitted(&[i % 3], i as f64 * 3.5, if i % 4 == 0 { 0.0 } else { 1e9 });
            if i % 7 == 0 {
                plane.on_shed(true);
            }
        }
        let mut saved = Vec::new();
        plane.save(&mut saved);
        let mut restored = OverloadPlane::new(cfg, 3);
        for (name, value) in &saved {
            assert!(restored.load(name, *value), "unconsumed entry {name}");
        }
        assert!(!restored.load("submitted", 5));
        assert_eq!(restored.snapshot(), plane.snapshot());
        assert_eq!(restored, plane);
    }

    #[test]
    fn identical_event_streams_yield_identical_state() {
        let drive = || {
            let mut plane = OverloadPlane::new(resolved().with_breaker_stream(3, 0.4), 2);
            for i in 0..200u64 {
                plane.on_submit(i as f64);
                match i % 5 {
                    0 => plane.on_admitted(&[0], i as f64, 50.0),
                    1 => plane.on_admitted(&[0, 1], i as f64 - 100.0, 10.0),
                    2 => plane.on_shed(true),
                    3 => plane.on_shed(false),
                    _ => plane.on_clock(i as f64 + 0.5),
                }
            }
            plane
        };
        assert_eq!(drive(), drive());
    }
}
