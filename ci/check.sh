#!/usr/bin/env bash
# The repo's CI gate: build, test, format, lint — in that order, so the
# cheapest failure mode (a broken build) surfaces before the slow test
# run, and style gates never mask a real breakage.
#
# Run locally before pushing: ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> chaos smoke (deterministic fault injection)"
# A short replay with a nonzero fault rate must exit 0, conserve VM
# placements (trace + restarts), and survive an injected shard-worker
# kill with every submission resolved to a final verdict.
CHAOS_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR"' EXIT
CLI=(cargo run --release -q -p eavm-cli --)
"${CLI[@]}" build-db --out-dir "$CHAOS_DIR/db" --exact --threads 4 > /dev/null
"${CLI[@]}" gen-trace --out "$CHAOS_DIR/t.swf" --jobs 200 --seed 5 > /dev/null
REPLAY_OUT="$("${CLI[@]}" replay-online --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --vms 200 \
    --fault-seed 42 --fault-rate 2.0)"
echo "$REPLAY_OUT" | grep -q "faults: seed=42" \
    || { echo "chaos smoke: no faults line"; echo "$REPLAY_OUT"; exit 1; }
echo "$REPLAY_OUT" | grep -q "conservation: ok" \
    || { echo "chaos smoke: conservation violated"; echo "$REPLAY_OUT"; exit 1; }
SERVE_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --fault-rate 2.0 --kill-shard 0 --kill-after 5 2>/dev/null)"
echo "$SERVE_OUT" | grep -q "conservation: ok" \
    || { echo "chaos smoke: service lost verdicts"; echo "$SERVE_OUT"; exit 1; }
echo "$SERVE_OUT" | grep -q "respawns=1" \
    || { echo "chaos smoke: shard never respawned"; echo "$SERVE_OUT"; exit 1; }

echo "CI checks passed."
