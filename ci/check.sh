#!/usr/bin/env bash
# The repo's CI gate: build, test, format, lint — in that order, so the
# cheapest failure mode (a broken build) surfaces before the slow test
# run, and style gates never mask a real breakage.
#
# Run locally before pushing: ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

# Every temp dir any step allocates lands here; the single EXIT trap
# sweeps them all, so later steps can add dirs without clobbering it.
TMP_DIRS=()
cleanup() {
    for d in ${TMP_DIRS[@]+"${TMP_DIRS[@]}"}; do
        rm -rf "$d"
    done
}
trap cleanup EXIT

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> eavm lint --deny (workspace invariant checker)"
# Statically enforces the determinism/panic-safety/codec invariants
# (DESIGN.md §10, §15). Any unwaived violation — including deleting the
# reason from an existing allow-pragma, or leaving a pragma whose line
# no longer violates — fails the gate.
cargo run --release -q -p eavm-cli -- lint --deny

echo "==> eavm lint report determinism (json + sarif byte-diff)"
# The linter scans files in parallel; the merged report must not care.
# Run each machine format twice and byte-diff — the same drill the
# scenario library gets. The SARIF copy is kept under target/ so the
# workflow can upload it as an artifact.
LINT_DIR="$(mktemp -d)"
TMP_DIRS+=("$LINT_DIR")
cargo run --release -q -p eavm-cli -- lint --format json  > "$LINT_DIR/lint.1.json"
cargo run --release -q -p eavm-cli -- lint --format json  > "$LINT_DIR/lint.2.json"
cmp "$LINT_DIR/lint.1.json" "$LINT_DIR/lint.2.json" \
    || { echo "lint: json report not byte-deterministic"; \
         diff "$LINT_DIR/lint.1.json" "$LINT_DIR/lint.2.json" | head -20; exit 1; }
cargo run --release -q -p eavm-cli -- lint --format sarif > "$LINT_DIR/lint.1.sarif"
cargo run --release -q -p eavm-cli -- lint --format sarif > "$LINT_DIR/lint.2.sarif"
cmp "$LINT_DIR/lint.1.sarif" "$LINT_DIR/lint.2.sarif" \
    || { echo "lint: sarif report not byte-deterministic"; \
         diff "$LINT_DIR/lint.1.sarif" "$LINT_DIR/lint.2.sarif" | head -20; exit 1; }
mkdir -p target
cp "$LINT_DIR/lint.1.sarif" target/eavm-lint.sarif

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> chaos smoke (deterministic fault injection)"
# A short replay with a nonzero fault rate must exit 0, conserve VM
# placements (trace + restarts), and survive an injected shard-worker
# kill with every submission resolved to a final verdict.
CHAOS_DIR="$(mktemp -d)"
TMP_DIRS+=("$CHAOS_DIR")
CLI=(cargo run --release -q -p eavm-cli --)
"${CLI[@]}" build-db --out-dir "$CHAOS_DIR/db" --exact --threads 4 > /dev/null
"${CLI[@]}" gen-trace --out "$CHAOS_DIR/t.swf" --jobs 200 --seed 5 > /dev/null
REPLAY_OUT="$("${CLI[@]}" replay-online --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --vms 200 \
    --fault-seed 42 --fault-rate 1.0)"
echo "$REPLAY_OUT" | grep -q "faults: seed=42" \
    || { echo "chaos smoke: no faults line"; echo "$REPLAY_OUT"; exit 1; }
echo "$REPLAY_OUT" | grep -q "conservation: ok" \
    || { echo "chaos smoke: conservation violated"; echo "$REPLAY_OUT"; exit 1; }
SERVE_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --fault-rate 1.0 --kill-shard 0 --kill-after 5 2>/dev/null)"
echo "$SERVE_OUT" | grep -q "conservation: ok" \
    || { echo "chaos smoke: service lost verdicts"; echo "$SERVE_OUT"; exit 1; }
echo "$SERVE_OUT" | grep -q "respawns=1" \
    || { echo "chaos smoke: shard never respawned"; echo "$SERVE_OUT"; exit 1; }

echo "==> crash-loop smoke (durable service recovery)"
# Control: a full paced run under a journal; its verdict log is the
# ground truth. Then the same run is killed mid-stream by the crash
# schedule (the process SIGABRTs after N journal appends), recovered
# from whatever hit the disk, and the reconstructed verdict log must be
# byte-identical to the control's.
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/ctrl" --checkpoint-every 16 \
    --verdicts-out "$CHAOS_DIR/ctrl.log" > /dev/null
test -s "$CHAOS_DIR/ctrl.log" \
    || { echo "crash-loop smoke: control wrote no verdicts"; exit 1; }
# The crashed run aborts by design: a nonzero exit here is the point.
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/crash" --checkpoint-every 16 \
    --crash-after-events 37 > /dev/null 2>&1 || true
test -s "$CHAOS_DIR/crash/wal.log" \
    || { echo "crash-loop smoke: crashed run left no WAL"; exit 1; }
"${CLI[@]}" recover --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --journal-dir "$CHAOS_DIR/crash" --checkpoint-every 16 \
    --verdicts-out "$CHAOS_DIR/rec.log" > /dev/null
cmp "$CHAOS_DIR/ctrl.log" "$CHAOS_DIR/rec.log" \
    || { echo "crash-loop smoke: recovered verdict log diverged"; \
         diff "$CHAOS_DIR/ctrl.log" "$CHAOS_DIR/rec.log" | head -20; exit 1; }

echo "==> consolidation crash drill (mid-sweep recovery parity)"
# Same drill with online consolidation sweeps running between
# admissions: Migrate frames are journaled *before* their moves
# execute, so a crash landing mid-sweep must recover — replaying the
# journaled move schedule, never re-planning — to a verdict log
# byte-identical to the uncrashed control's.
CONS_FLAGS=(--consolidate-every 50 --drain-threshold 2)
CONS_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 8 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/cons-ctrl" --checkpoint-every 16 \
    "${CONS_FLAGS[@]}" --verdicts-out "$CHAOS_DIR/cons-ctrl.log")"
echo "$CONS_OUT" | grep -q "consolidation: sweeps=" \
    || { echo "consolidation drill: no sweeps ran"; echo "$CONS_OUT"; exit 1; }
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 8 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/cons-crash" --checkpoint-every 16 \
    "${CONS_FLAGS[@]}" --crash-after-events 53 > /dev/null 2>&1 || true
test -s "$CHAOS_DIR/cons-crash/wal.log" \
    || { echo "consolidation drill: crashed run left no WAL"; exit 1; }
"${CLI[@]}" recover --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 8 --shards 2 --vms 200 \
    --journal-dir "$CHAOS_DIR/cons-crash" --checkpoint-every 16 \
    "${CONS_FLAGS[@]}" --verdicts-out "$CHAOS_DIR/cons-rec.log" > /dev/null
cmp "$CHAOS_DIR/cons-ctrl.log" "$CHAOS_DIR/cons-rec.log" \
    || { echo "consolidation drill: recovered verdict log diverged"; \
         diff "$CHAOS_DIR/cons-ctrl.log" "$CHAOS_DIR/cons-rec.log" | head -20; exit 1; }

echo "==> corruption matrix drill (scrub + degraded-mode recovery parity)"
# Four storage-fault cells, each driven back to the uncrashed control's
# verdict log byte for byte: a bit-flipped newest snapshot, a torn WAL
# tail, ENOSPC mid-run, and a crash with every fsync dropped. Scrub
# reports are seeded-deterministic: the same corruption seed on an
# identical journal copy must render the identical report.
CORR_DIR="$(mktemp -d)"
TMP_DIRS+=("$CORR_DIR")
RECOVER=("${CLI[@]}" recover --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --checkpoint-every 16)

# Cell 1: bit-flip the newest snapshot — twice, on two identical
# copies, to pin the scrub report's determinism.
for side in a b; do
    mkdir "$CORR_DIR/flip-$side"
    cp "$CHAOS_DIR/ctrl/"* "$CORR_DIR/flip-$side/"
    "${CLI[@]}" corrupt --journal-dir "$CORR_DIR/flip-$side" \
        --kind snapshot-bit-flip --seed 9 > /dev/null
    "${CLI[@]}" scrub --journal-dir "$CORR_DIR/flip-$side" \
        > "$CORR_DIR/flip-$side.report"
done
cmp "$CORR_DIR/flip-a.report" "$CORR_DIR/flip-b.report" \
    || { echo "corruption drill: scrub report not deterministic"; \
         diff "$CORR_DIR/flip-a.report" "$CORR_DIR/flip-b.report"; exit 1; }
grep -q "quarantined=1" "$CORR_DIR/flip-a.report" \
    || { echo "corruption drill: flipped snapshot not quarantined"; \
         cat "$CORR_DIR/flip-a.report"; exit 1; }
"${RECOVER[@]}" --journal-dir "$CORR_DIR/flip-a" \
    --verdicts-out "$CORR_DIR/flip.log" > /dev/null
cmp "$CHAOS_DIR/ctrl.log" "$CORR_DIR/flip.log" \
    || { echo "corruption drill: snapshot-bit-flip cell diverged"; exit 1; }

# Cell 2: torn WAL tail — a frame header promising bytes that never
# landed. Scrub repairs the tail; a second scrub must come back clean.
mkdir "$CORR_DIR/torn"
cp "$CHAOS_DIR/ctrl/"* "$CORR_DIR/torn/"
"${CLI[@]}" corrupt --journal-dir "$CORR_DIR/torn" \
    --kind wal-torn-tail --seed 7 > /dev/null
"${CLI[@]}" scrub --journal-dir "$CORR_DIR/torn" > "$CORR_DIR/torn.report"
grep -q "torn_tails_repaired=1" "$CORR_DIR/torn.report" \
    || { echo "corruption drill: torn tail not repaired"; \
         cat "$CORR_DIR/torn.report"; exit 1; }
"${CLI[@]}" scrub --journal-dir "$CORR_DIR/torn" | grep -q "verdict: clean" \
    || { echo "corruption drill: scrub not idempotent on torn tail"; exit 1; }
"${RECOVER[@]}" --journal-dir "$CORR_DIR/torn" \
    --verdicts-out "$CORR_DIR/torn.log" > /dev/null
cmp "$CHAOS_DIR/ctrl.log" "$CORR_DIR/torn.log" \
    || { echo "corruption drill: wal-torn-tail cell diverged"; exit 1; }

# Cell 3: ENOSPC mid-checkpoint — the byte budget runs dry mid-stream,
# the service degrades (WAL-only, then read-only shed) but must still
# conserve verdicts; recovery on healthy storage re-drives the
# undecided suffix back to parity.
ENOSPC_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --paced --journal-dir "$CORR_DIR/enospc" --checkpoint-every 16 \
    --storage-enospc-after 6000 --storage-fault-seed 3)"
echo "$ENOSPC_OUT" | grep -q "conservation: ok" \
    || { echo "corruption drill: ENOSPC run lost verdicts"; echo "$ENOSPC_OUT"; exit 1; }
echo "$ENOSPC_OUT" | grep -q "storage: faults-injected=" \
    || { echo "corruption drill: ENOSPC run injected no faults"; echo "$ENOSPC_OUT"; exit 1; }
"${RECOVER[@]}" --journal-dir "$CORR_DIR/enospc" --scrub \
    --verdicts-out "$CORR_DIR/enospc.log" > /dev/null
cmp "$CHAOS_DIR/ctrl.log" "$CORR_DIR/enospc.log" \
    || { echo "corruption drill: ENOSPC cell diverged"; \
         diff "$CHAOS_DIR/ctrl.log" "$CORR_DIR/enospc.log" | head -20; exit 1; }

# Cell 4: every fsync dropped, then a hard crash — the WAL bytes that
# reached the page cache must still replay to the control's log.
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --paced --journal-dir "$CORR_DIR/dropsync" --checkpoint-every 16 \
    --storage-drop-sync 1.0 --storage-fault-seed 11 \
    --crash-after-events 37 > /dev/null 2>&1 || true
test -s "$CORR_DIR/dropsync/wal.log" \
    || { echo "corruption drill: dropped-fsync run left no WAL"; exit 1; }
"${RECOVER[@]}" --journal-dir "$CORR_DIR/dropsync" --scrub \
    --verdicts-out "$CORR_DIR/dropsync.log" > /dev/null
cmp "$CHAOS_DIR/ctrl.log" "$CORR_DIR/dropsync.log" \
    || { echo "corruption drill: dropped-fsync cell diverged"; \
         diff "$CHAOS_DIR/ctrl.log" "$CORR_DIR/dropsync.log" | head -20; exit 1; }

echo "==> overload drill (brownout ladder + crash parity under load)"
# A dense flash crowd (5 s mean burst gap, ~5x the 4-server fleet's
# capacity) through the armed overload plane: the brownout ladder must
# shed Batch first and hold Interactive goodput at >= 90% of its
# offered load, and a crash mid-crowd must recover to the uncrashed
# control's verdict log byte for byte under the same overload flags.
OVL_DIR="$(mktemp -d)"
TMP_DIRS+=("$OVL_DIR")
OVL_FLAGS=(--queue 48 --overload --limit-max 8
           --queue-target 7200 --queue-interval 7200)
"${CLI[@]}" gen-trace --out "$OVL_DIR/crowd.swf" \
    --jobs 200 --seed 5 --burst-gap 5 > /dev/null
OVL_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$OVL_DIR/crowd.swf" --servers 4 --shards 2 --vms 200 \
    --paced --journal-dir "$OVL_DIR/ctrl" --checkpoint-every 16 \
    "${OVL_FLAGS[@]}" --verdicts-out "$OVL_DIR/ctrl.log")"
echo "$OVL_OUT" | grep -q "conservation: ok" \
    || { echo "overload drill: verdicts not conserved"; echo "$OVL_OUT"; exit 1; }
echo "$OVL_OUT" | awk '
    /^shed:/ {
        for (i = 1; i <= NF; i++)
            if (split($i, kv, "=") == 2 && kv[1] == "brownout-class")
                brownout = kv[2]
    }
    /^classes:/ {
        for (i = 1; i <= NF; i++)
            if (split($i, kv, "=") == 2) c[kv[1]] = kv[2]
    }
    END {
        if (brownout + 0 <= 0) {
            print "overload drill: ladder never shed (brownout-class=" brownout ")"
            exit 1
        }
        if (c["admitted-interactive"] < 0.9 * c["submitted-interactive"]) {
            print "overload drill: Interactive goodput below 90% (" \
                c["admitted-interactive"] "/" c["submitted-interactive"] ")"
            exit 1
        }
        if (c["admitted-batch"] / c["submitted-batch"] >= \
            c["admitted-interactive"] / c["submitted-interactive"]) {
            print "overload drill: Batch was not shed before Interactive"
            exit 1
        }
    }' || { echo "$OVL_OUT"; exit 1; }
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$OVL_DIR/crowd.swf" --servers 4 --shards 2 --vms 200 \
    --paced --journal-dir "$OVL_DIR/crash" --checkpoint-every 16 \
    "${OVL_FLAGS[@]}" --crash-after-events 37 > /dev/null 2>&1 || true
test -s "$OVL_DIR/crash/wal.log" \
    || { echo "overload drill: crashed run left no WAL"; exit 1; }
"${CLI[@]}" recover --db-dir "$CHAOS_DIR/db" \
    --trace "$OVL_DIR/crowd.swf" --servers 4 --shards 2 --vms 200 \
    --journal-dir "$OVL_DIR/crash" --checkpoint-every 16 \
    "${OVL_FLAGS[@]}" --verdicts-out "$OVL_DIR/rec.log" > /dev/null
cmp "$OVL_DIR/ctrl.log" "$OVL_DIR/rec.log" \
    || { echo "overload drill: recovered verdict log diverged"; \
         diff "$OVL_DIR/ctrl.log" "$OVL_DIR/rec.log" | head -20; exit 1; }

echo "==> scenario library (byte-deterministic replays)"
# Every committed scenario must check clean and produce byte-identical
# outcome CSVs across two runs (against the exact model database the
# chaos smoke already built). Any diff fails the gate — scenarios are
# replay-critical artifacts, not examples.
SCEN_DIR="$(mktemp -d)"
TMP_DIRS+=("$SCEN_DIR")
for f in scenarios/*.eavm; do
    name="$(basename "$f" .eavm)"
    "${CLI[@]}" scenario check "$f" > /dev/null \
        || { echo "scenario library: $f failed check"; exit 1; }
    "${CLI[@]}" scenario run "$f" --db-dir "$CHAOS_DIR/db" \
        --out "$SCEN_DIR/$name.1.csv" > /dev/null 2>&1 \
        || { echo "scenario library: $f failed first run"; exit 1; }
    "${CLI[@]}" scenario run "$f" --db-dir "$CHAOS_DIR/db" \
        --out "$SCEN_DIR/$name.2.csv" > /dev/null 2>&1 \
        || { echo "scenario library: $f failed second run"; exit 1; }
    cmp "$SCEN_DIR/$name.1.csv" "$SCEN_DIR/$name.2.csv" \
        || { echo "scenario library: $f is not byte-deterministic"; \
             diff "$SCEN_DIR/$name.1.csv" "$SCEN_DIR/$name.2.csv" | head -20; exit 1; }
    echo "    $name: deterministic ($(wc -l < "$SCEN_DIR/$name.1.csv") rows)"
done

echo "CI checks passed."
