#!/usr/bin/env bash
# The repo's CI gate: build, test, format, lint — in that order, so the
# cheapest failure mode (a broken build) surfaces before the slow test
# run, and style gates never mask a real breakage.
#
# Run locally before pushing: ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "CI checks passed."
