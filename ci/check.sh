#!/usr/bin/env bash
# The repo's CI gate: build, test, format, lint — in that order, so the
# cheapest failure mode (a broken build) surfaces before the slow test
# run, and style gates never mask a real breakage.
#
# Run locally before pushing: ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

# Every temp dir any step allocates lands here; the single EXIT trap
# sweeps them all, so later steps can add dirs without clobbering it.
TMP_DIRS=()
cleanup() {
    for d in ${TMP_DIRS[@]+"${TMP_DIRS[@]}"}; do
        rm -rf "$d"
    done
}
trap cleanup EXIT

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> eavm lint --deny (workspace invariant checker)"
# Statically enforces the determinism/panic-safety/codec invariants
# (DESIGN.md §10). Any unwaived violation — including deleting the
# reason from an existing allow-pragma — fails the gate.
cargo run --release -q -p eavm-cli -- lint --deny

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> chaos smoke (deterministic fault injection)"
# A short replay with a nonzero fault rate must exit 0, conserve VM
# placements (trace + restarts), and survive an injected shard-worker
# kill with every submission resolved to a final verdict.
CHAOS_DIR="$(mktemp -d)"
TMP_DIRS+=("$CHAOS_DIR")
CLI=(cargo run --release -q -p eavm-cli --)
"${CLI[@]}" build-db --out-dir "$CHAOS_DIR/db" --exact --threads 4 > /dev/null
"${CLI[@]}" gen-trace --out "$CHAOS_DIR/t.swf" --jobs 200 --seed 5 > /dev/null
REPLAY_OUT="$("${CLI[@]}" replay-online --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --vms 200 \
    --fault-seed 42 --fault-rate 1.0)"
echo "$REPLAY_OUT" | grep -q "faults: seed=42" \
    || { echo "chaos smoke: no faults line"; echo "$REPLAY_OUT"; exit 1; }
echo "$REPLAY_OUT" | grep -q "conservation: ok" \
    || { echo "chaos smoke: conservation violated"; echo "$REPLAY_OUT"; exit 1; }
SERVE_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --fault-rate 1.0 --kill-shard 0 --kill-after 5 2>/dev/null)"
echo "$SERVE_OUT" | grep -q "conservation: ok" \
    || { echo "chaos smoke: service lost verdicts"; echo "$SERVE_OUT"; exit 1; }
echo "$SERVE_OUT" | grep -q "respawns=1" \
    || { echo "chaos smoke: shard never respawned"; echo "$SERVE_OUT"; exit 1; }

echo "==> crash-loop smoke (durable service recovery)"
# Control: a full paced run under a journal; its verdict log is the
# ground truth. Then the same run is killed mid-stream by the crash
# schedule (the process SIGABRTs after N journal appends), recovered
# from whatever hit the disk, and the reconstructed verdict log must be
# byte-identical to the control's.
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/ctrl" --checkpoint-every 16 \
    --verdicts-out "$CHAOS_DIR/ctrl.log" > /dev/null
test -s "$CHAOS_DIR/ctrl.log" \
    || { echo "crash-loop smoke: control wrote no verdicts"; exit 1; }
# The crashed run aborts by design: a nonzero exit here is the point.
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/crash" --checkpoint-every 16 \
    --crash-after-events 37 > /dev/null 2>&1 || true
test -s "$CHAOS_DIR/crash/wal.log" \
    || { echo "crash-loop smoke: crashed run left no WAL"; exit 1; }
"${CLI[@]}" recover --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 6 --shards 2 --vms 200 \
    --journal-dir "$CHAOS_DIR/crash" --checkpoint-every 16 \
    --verdicts-out "$CHAOS_DIR/rec.log" > /dev/null
cmp "$CHAOS_DIR/ctrl.log" "$CHAOS_DIR/rec.log" \
    || { echo "crash-loop smoke: recovered verdict log diverged"; \
         diff "$CHAOS_DIR/ctrl.log" "$CHAOS_DIR/rec.log" | head -20; exit 1; }

echo "==> consolidation crash drill (mid-sweep recovery parity)"
# Same drill with online consolidation sweeps running between
# admissions: Migrate frames are journaled *before* their moves
# execute, so a crash landing mid-sweep must recover — replaying the
# journaled move schedule, never re-planning — to a verdict log
# byte-identical to the uncrashed control's.
CONS_FLAGS=(--consolidate-every 50 --drain-threshold 2)
CONS_OUT="$("${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 8 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/cons-ctrl" --checkpoint-every 16 \
    "${CONS_FLAGS[@]}" --verdicts-out "$CHAOS_DIR/cons-ctrl.log")"
echo "$CONS_OUT" | grep -q "consolidation: sweeps=" \
    || { echo "consolidation drill: no sweeps ran"; echo "$CONS_OUT"; exit 1; }
"${CLI[@]}" serve --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 8 --shards 2 --vms 200 \
    --paced --journal-dir "$CHAOS_DIR/cons-crash" --checkpoint-every 16 \
    "${CONS_FLAGS[@]}" --crash-after-events 53 > /dev/null 2>&1 || true
test -s "$CHAOS_DIR/cons-crash/wal.log" \
    || { echo "consolidation drill: crashed run left no WAL"; exit 1; }
"${CLI[@]}" recover --db-dir "$CHAOS_DIR/db" \
    --trace "$CHAOS_DIR/t.swf" --servers 8 --shards 2 --vms 200 \
    --journal-dir "$CHAOS_DIR/cons-crash" --checkpoint-every 16 \
    "${CONS_FLAGS[@]}" --verdicts-out "$CHAOS_DIR/cons-rec.log" > /dev/null
cmp "$CHAOS_DIR/cons-ctrl.log" "$CHAOS_DIR/cons-rec.log" \
    || { echo "consolidation drill: recovered verdict log diverged"; \
         diff "$CHAOS_DIR/cons-ctrl.log" "$CHAOS_DIR/cons-rec.log" | head -20; exit 1; }

echo "==> scenario library (byte-deterministic replays)"
# Every committed scenario must check clean and produce byte-identical
# outcome CSVs across two runs (against the exact model database the
# chaos smoke already built). Any diff fails the gate — scenarios are
# replay-critical artifacts, not examples.
SCEN_DIR="$(mktemp -d)"
TMP_DIRS+=("$SCEN_DIR")
for f in scenarios/*.eavm; do
    name="$(basename "$f" .eavm)"
    "${CLI[@]}" scenario check "$f" > /dev/null \
        || { echo "scenario library: $f failed check"; exit 1; }
    "${CLI[@]}" scenario run "$f" --db-dir "$CHAOS_DIR/db" \
        --out "$SCEN_DIR/$name.1.csv" > /dev/null 2>&1 \
        || { echo "scenario library: $f failed first run"; exit 1; }
    "${CLI[@]}" scenario run "$f" --db-dir "$CHAOS_DIR/db" \
        --out "$SCEN_DIR/$name.2.csv" > /dev/null 2>&1 \
        || { echo "scenario library: $f failed second run"; exit 1; }
    cmp "$SCEN_DIR/$name.1.csv" "$SCEN_DIR/$name.2.csv" \
        || { echo "scenario library: $f is not byte-deterministic"; \
             diff "$SCEN_DIR/$name.1.csv" "$SCEN_DIR/$name.2.csv" | head -20; exit 1; }
    echo "    $name: deterministic ($(wc -l < "$SCEN_DIR/$name.1.csv") rows)"
done

echo "CI checks passed."
