//! # eavm — Energy-Aware Application-Centric VM Allocation for HPC Workloads
//!
//! A full Rust reproduction of Viswanathan, Lee, Rodero, Pompili,
//! Parashar & Gamell, *"Energy-Aware Application-Centric VM Allocation
//! for HPC Workloads"* (IPDPS/IPPS 2011): the empirical
//! benchmarking-based allocation model, the PROACTIVE(α) partition-search
//! allocator, the FIRST-FIT baselines, and every substrate the evaluation
//! depends on — a synthetic single-server testbed (contention + power +
//! metering), the CSV model database, Orlov set-partition enumeration,
//! SWF trace tooling with an EGEE-like generator, and a discrete-event
//! datacenter simulator with Fig.-4 interval-weighted accounting.
//!
//! ## Quick start
//!
//! ```
//! use eavm::prelude::*;
//!
//! // 1. Build the empirical model: base tests + exhaustive combined
//! //    benchmarks on the synthetic testbed (Sect. III of the paper).
//! let db = DbBuilder::exact().build().expect("model database");
//! assert!(db.covers(MixVector::new(1, 1, 1)));
//!
//! // 2. Wrap it as the PROACTIVE allocator's knowledge and ask for a
//! //    placement of a 4-VM CPU-intensive job on a small fleet.
//! let deadlines = [Seconds(3600.0), Seconds(3000.0), Seconds(2700.0)];
//! let mut pa = Proactive::new(DbModel::new(db), OptimizationGoal::BALANCED, deadlines);
//! let servers: Vec<ServerView> = (0..4u32)
//!     .map(|i| ServerView::homogeneous(ServerId::new(i), MixVector::EMPTY))
//!     .collect();
//! let request = RequestView {
//!     id: JobId::new(0),
//!     workload: WorkloadType::Cpu,
//!     vm_count: 4,
//!     deadline: deadlines[0],
//! };
//! let placements = pa.allocate(&request, &servers).expect("feasible");
//! let placed: u32 = placements.iter().map(|p| p.add.total()).sum();
//! assert_eq!(placed, 4);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`types`] | shared ids, units, workload classification, mix vectors |
//! | [`testbed`] | synthetic server hardware / contention / power / meter / profiler |
//! | [`benchdb`] | benchmarking platform + CSV model database (Tables I & II) |
//! | [`partitions`] | Orlov set-partition and multiset-partition enumeration |
//! | [`swf`] | SWF parsing, cleaning, EGEE-like generation, VM-request adaptation |
//! | [`core`] | PROACTIVE(α) + FIRST-FIT strategies, models, Fig. 4 estimation |
//! | [`simulator`] | discrete-event datacenter engine + metrics + cloud sizing |
//! | [`faults`] | seeded deterministic fault plans: crashes, degradation, lookup failures |
//! | [`telemetry`] | metrics registry, bounded event journal, Prometheus/JSON exporters |
//! | [`storage`] | file-operation abstraction + seeded storage-fault injection (torn writes, bit rot, ENOSPC) |
//! | [`durability`] | write-ahead admission journal, checkpoint snapshots, scrubbing, crash recovery |
//! | [`migrate`] | live-migration pre-copy cost model + threshold consolidation policy |
//! | [`overload`] | deterministic overload control: AIMD limits, queue-age shedding, circuit breaker, brownout |
//! | [`service`] | online concurrent allocation service (sharded fleet, batched admission) |
//!
//! The `eavm-bench` crate (not re-exported) regenerates every table and
//! figure of the paper; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub use eavm_benchdb as benchdb;
pub use eavm_core as core;
pub use eavm_durability as durability;
pub use eavm_faults as faults;
pub use eavm_migrate as migrate;
pub use eavm_overload as overload;
pub use eavm_partitions as partitions;
pub use eavm_service as service;
pub use eavm_simulator as simulator;
pub use eavm_storage as storage;
pub use eavm_swf as swf;
pub use eavm_telemetry as telemetry;
pub use eavm_testbed as testbed;
pub use eavm_types as types;

/// Everything a downstream user typically needs, one import away.
pub mod prelude {
    pub use eavm_benchdb::{AuxData, BaseTests, DbBuilder, DbRecord, ModelDatabase};
    pub use eavm_core::strategy::{Placement, RequestView, ServerView};
    pub use eavm_core::{
        AllocationModel, AllocationStrategy, AnalyticModel, DbModel, FirstFit, MixEstimate,
        OptimizationGoal, Proactive,
    };
    pub use eavm_faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, LookupFaults};
    pub use eavm_overload::{OverloadConfig, Priority};
    pub use eavm_partitions::{multiset_partitions, BoundedPartitions, SetPartitions};
    pub use eavm_simulator::{CloudConfig, SimOutcome, Simulation};
    pub use eavm_swf::{
        adapt_trace, clean_trace, AdaptConfig, GeneratorConfig, SwfTrace, TraceGenerator, VmRequest,
    };
    pub use eavm_telemetry::{MetricsSnapshot, Severity, Telemetry};
    pub use eavm_testbed::{
        ApplicationProfile, BenchmarkSuite, ContentionModel, PowerMeter, PowerModel, Profiler,
        RunSimulator, ServerSpec, Subsystem,
    };
    pub use eavm_types::{
        EavmError, JobId, Joules, MixVector, Seconds, ServerId, VmId, Watts, WorkloadType,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let spec = ServerSpec::reference_rack_server();
        assert_eq!(spec.cpu_slots(), 4);
        let goal = OptimizationGoal::BALANCED;
        assert_eq!(goal.alpha(), 0.5);
        let mix = MixVector::new(1, 2, 3);
        assert_eq!(mix.total(), 6);
    }
}
