//! Quickstart: build the empirical model, allocate a job with
//! PROACTIVE(α), and compare the decision with plain FIRST-FIT.
//!
//! Run with: `cargo run --release --example quickstart`

use eavm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the empirical allocation model exactly as Sect. III of the
    //    paper prescribes: base tests (1..=16 clones of each workload
    //    type) followed by the exhaustive combined benchmarks, all on the
    //    synthetic reference server (quad-core Xeon, 4 GB RAM, Xen-like
    //    virtualization overhead).
    println!("building the empirical model database...");
    let db = DbBuilder::default().build()?;
    let aux = db.aux().clone();
    println!(
        "  {} registers; optimal scenarios OSP={} OSE={}; solo times (TC,TM,TI) = ({}, {}, {})",
        db.len(),
        aux.os_perf,
        aux.os_energy,
        aux.solo_times[0],
        aux.solo_times[1],
        aux.solo_times[2],
    );

    // 2. A small fleet: two servers already host VMs, two are powered off.
    let servers = vec![
        ServerView::homogeneous(ServerId::new(0), MixVector::new(3, 0, 0)),
        ServerView::homogeneous(ServerId::new(1), MixVector::new(0, 2, 1)),
        ServerView::homogeneous(ServerId::new(2), MixVector::EMPTY),
        ServerView::homogeneous(ServerId::new(3), MixVector::EMPTY),
    ];

    // 3. An incoming job request: 3 CPU-intensive VMs with a 1-hour
    //    response deadline.
    let deadlines = [Seconds(3600.0), Seconds(3000.0), Seconds(2700.0)];
    let request = RequestView {
        id: JobId::new(42),
        workload: WorkloadType::Cpu,
        vm_count: 3,
        deadline: deadlines[WorkloadType::Cpu.index()],
    };

    // 4. Ask each optimization goal where the VMs should go.
    for goal in [
        OptimizationGoal::ENERGY,
        OptimizationGoal::PERFORMANCE,
        OptimizationGoal::BALANCED,
    ] {
        let mut pa = Proactive::new(DbModel::new(db.clone()), goal, deadlines);
        let placements = pa.allocate(&request, &servers)?;
        let detail: Vec<String> = placements
            .iter()
            .map(|p| format!("{} VMs -> {}", p.add.total(), p.server))
            .collect();
        println!("{}: {}", goal.label(), detail.join(", "));
    }

    // 5. FIRST-FIT for contrast: profile-blind CPU-slot counting.
    let mut ff = FirstFit::ff(4);
    let placements = ff.allocate(&request, &servers)?;
    let detail: Vec<String> = placements
        .iter()
        .map(|p| format!("{} VMs -> {}", p.add.total(), p.server))
        .collect();
    println!("FF  : {}", detail.join(", "));

    Ok(())
}
