//! Capacity planning: use the simulator as an oracle for "how many
//! servers do I need to keep SLA violations under X % for this
//! workload?" — the operational question the paper's SMALLER/LARGER
//! comparison gestures at, answered by bisection over the fleet size.
//!
//! Run with: `cargo run --release --example capacity_planning`

use eavm::prelude::*;

fn build_workload(db: &ModelDatabase) -> (Vec<VmRequest>, [Seconds; 3]) {
    let solo = [
        db.aux().solo_time(WorkloadType::Cpu),
        db.aux().solo_time(WorkloadType::Mem),
        db.aux().solo_time(WorkloadType::Io),
    ];
    let mut generator = TraceGenerator::new(GeneratorConfig {
        seed: 55,
        total_jobs: 1_250,
        mean_burst_gap_s: 18.0,
        ..Default::default()
    })
    .unwrap();
    let mut trace = generator.generate();
    clean_trace(&mut trace);
    let cfg = AdaptConfig {
        qos_factor: 3.0,
        ..AdaptConfig::paper(55, solo)
    };
    let mut requests = adapt_trace(&trace, &cfg);
    eavm::swf::truncate_to_vm_total(&mut requests, 2_500);
    let deadlines = [
        cfg.deadline(WorkloadType::Cpu),
        cfg.deadline(WorkloadType::Mem),
        cfg.deadline(WorkloadType::Io),
    ];
    (requests, deadlines)
}

fn sla_at(
    servers: usize,
    db: &ModelDatabase,
    deadlines: [Seconds; 3],
    requests: &[VmRequest],
) -> SimOutcome {
    let cloud = CloudConfig::new(format!("N{servers}"), servers).unwrap();
    let sim = Simulation::new(AnalyticModel::reference(), cloud);
    let mut pa = Proactive::new(
        DbModel::new(db.clone()),
        OptimizationGoal::BALANCED,
        deadlines,
    )
    .with_qos_margin(0.65);
    sim.run(&mut pa, requests).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = DbBuilder::exact().build()?;
    let (requests, deadlines) = build_workload(&db);
    let target_pct = 5.0;
    println!(
        "workload: {} requests / {} VMs; target: <= {target_pct}% SLA violations under PA-0.5",
        requests.len(),
        eavm::swf::total_vms(&requests)
    );

    // Bisect the smallest fleet meeting the target. SLA% is monotone
    // non-increasing in fleet size for a fixed workload.
    let (mut lo, mut hi) = (4usize, 64usize);
    let top = sla_at(hi, &db, deadlines, &requests);
    assert!(
        top.sla_violation_pct() <= target_pct,
        "even {hi} servers cannot meet the target"
    );
    println!("\nservers  makespan_s  energy_MJ  sla_pct");
    while lo + 1 < hi {
        let mid = lo.midpoint(hi);
        let out = sla_at(mid, &db, deadlines, &requests);
        println!(
            "{:>7}  {:>10.0}  {:>9.2}  {:>7.1}",
            mid,
            out.makespan().value(),
            out.energy.value() / 1e6,
            out.sla_violation_pct()
        );
        if out.sla_violation_pct() <= target_pct {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let chosen = sla_at(hi, &db, deadlines, &requests);
    println!(
        "\nanswer: {} servers ({:.1}% violations, makespan {:.0} s, energy {:.2} MJ)",
        hi,
        chosen.sla_violation_pct(),
        chosen.makespan().value(),
        chosen.energy.value() / 1e6,
    );
    Ok(())
}
