//! Datacenter scenario: synthesize an EGEE-like trace, clean and adapt
//! it (profiles by bursts, 1–4 VMs per request, per-type deadlines), and
//! replay it through the discrete-event simulator under three
//! strategies, printing the paper's three metrics.
//!
//! Run with: `cargo run --release --example datacenter_sim`

use eavm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Empirical model (exact metering for a deterministic demo).
    let db = DbBuilder::exact().build()?;
    let solo = [
        db.aux().solo_time(WorkloadType::Cpu),
        db.aux().solo_time(WorkloadType::Mem),
        db.aux().solo_time(WorkloadType::Io),
    ];

    // Workload: ~1,500 VMs of bursty grid jobs.
    let mut generator = TraceGenerator::new(GeneratorConfig {
        seed: 7,
        total_jobs: 800,
        ..Default::default()
    })?;
    let mut trace = generator.generate();
    let report = clean_trace(&mut trace);
    println!(
        "trace: {} jobs kept ({} failed, {} cancelled, {} anomalies dropped)",
        report.kept, report.failed, report.cancelled, report.anomalies
    );

    let adapt_cfg = AdaptConfig {
        qos_factor: 3.0,
        ..AdaptConfig::paper(7, solo)
    };
    let mut requests = adapt_trace(&trace, &adapt_cfg);
    eavm::swf::truncate_to_vm_total(&mut requests, 1_500);
    println!(
        "adapted: {} requests, {} VMs",
        requests.len(),
        eavm::swf::total_vms(&requests)
    );

    // A 12-server cloud under the analytic ground truth.
    let cloud = CloudConfig::new("DEMO", 12)?;
    let ground_truth = AnalyticModel::reference();
    let deadlines = [
        adapt_cfg.deadline(WorkloadType::Cpu),
        adapt_cfg.deadline(WorkloadType::Mem),
        adapt_cfg.deadline(WorkloadType::Io),
    ];

    println!("\nstrategy  makespan_s  energy_MJ  sla_pct  mean_wait_s");
    for name in ["FF", "FF-2", "PA-1", "PA-0"] {
        let mut strategy: Box<dyn AllocationStrategy> = match name {
            "FF" => Box::new(FirstFit::ff(4)),
            "FF-2" => Box::new(FirstFit::with_multiplex(4, 2)),
            "PA-1" => Box::new(
                Proactive::new(
                    DbModel::new(db.clone()),
                    OptimizationGoal::ENERGY,
                    deadlines,
                )
                .with_qos_margin(0.65),
            ),
            _ => Box::new(
                Proactive::new(
                    DbModel::new(db.clone()),
                    OptimizationGoal::PERFORMANCE,
                    deadlines,
                )
                .with_qos_margin(0.65),
            ),
        };
        let sim = Simulation::new(ground_truth.clone(), cloud.clone());
        let out = sim.run(strategy.as_mut(), &requests)?;
        println!(
            "{:<8}  {:>10.0}  {:>9.2}  {:>7.1}  {:>11.0}",
            out.strategy,
            out.makespan().value(),
            out.energy.value() / 1e6,
            out.sla_violation_pct(),
            out.mean_wait_time().value(),
        );
    }
    Ok(())
}
