//! The energy/performance trade-off knob: sweep α from 0 to 1 on a small
//! loaded cloud and watch makespan and energy trade places — the paper's
//! Sect. III-D semantics ("α emphasizes the energy efficiency goal while
//! 1−α emphasizes performance").
//!
//! Run with: `cargo run --release --example alpha_sweep`

use eavm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = DbBuilder::exact().build()?;
    let solo = [
        db.aux().solo_time(WorkloadType::Cpu),
        db.aux().solo_time(WorkloadType::Mem),
        db.aux().solo_time(WorkloadType::Io),
    ];

    let mut generator = TraceGenerator::new(GeneratorConfig {
        seed: 21,
        total_jobs: 600,
        ..Default::default()
    })?;
    let mut trace = generator.generate();
    clean_trace(&mut trace);
    let adapt_cfg = AdaptConfig {
        qos_factor: 3.0,
        ..AdaptConfig::paper(21, solo)
    };
    let mut requests = adapt_trace(&trace, &adapt_cfg);
    eavm::swf::truncate_to_vm_total(&mut requests, 1_200);

    let cloud = CloudConfig::new("SWEEP", 9)?;
    let ground_truth = AnalyticModel::reference();
    let deadlines = [
        adapt_cfg.deadline(WorkloadType::Cpu),
        adapt_cfg.deadline(WorkloadType::Mem),
        adapt_cfg.deadline(WorkloadType::Io),
    ];

    println!("alpha  makespan_s  energy_MJ  sla_pct");
    for i in 0..=10 {
        let alpha = i as f64 / 10.0;
        let goal = OptimizationGoal::new(alpha)?;
        let mut pa =
            Proactive::new(DbModel::new(db.clone()), goal, deadlines).with_qos_margin(0.65);
        let sim = Simulation::new(ground_truth.clone(), cloud.clone());
        let out = sim.run(&mut pa, &requests)?;
        println!(
            "{:<5}  {:>10.0}  {:>9.2}  {:>7.1}",
            alpha,
            out.makespan().value(),
            out.energy.value() / 1e6,
            out.sla_violation_pct(),
        );
    }
    println!("\nreading: energy falls and execution time rises as alpha -> 1; the ends of the");
    println!("sweep are the paper's PA-0 and PA-1 strategies, the middle its PA-0.5.");
    Ok(())
}
