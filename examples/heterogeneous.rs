//! Heterogeneous fleet walkthrough (the paper's future-work item i):
//! build one model database per hardware platform, run a mixed fleet
//! (reference rack servers + dual-socket big nodes), and compare a
//! platform-aware PROACTIVE allocator against a platform-naive one and
//! slot-aware FIRST-FIT.
//!
//! Run with: `cargo run --release --example heterogeneous`

use eavm::prelude::*;
use eavm::testbed::ContentionModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One database per platform; per-platform Table I parameters differ,
    // which is exactly the "system characteristics in the database"
    // extension Sect. III-C sketches.
    println!("building per-platform databases...");
    let db_ref = DbBuilder::exact().build()?;
    let db_big = DbBuilder {
        sim: RunSimulator {
            server: ServerSpec::big_node(),
            model: ContentionModel::default(),
        },
        meter_seed: None,
        ..Default::default()
    }
    .build()?;
    println!(
        "  reference bounds {}  |  big-node bounds {}",
        db_ref.aux().os_bounds,
        db_big.aux().os_bounds
    );

    // Ground truth per platform.
    let truth_ref = AnalyticModel::reference();
    let truth_big = AnalyticModel::new(
        ServerSpec::big_node(),
        ContentionModel::default(),
        &BenchmarkSuite::standard(),
        MixVector::new(24, 24, 24),
    );

    // A small mixed fleet: 6 reference servers + 3 big nodes.
    let fleet = |name: &str| {
        Simulation::new(truth_ref.clone(), CloudConfig::new(name, 6).unwrap())
            .with_platform(truth_big.clone(), 3)
    };

    // A bursty workload of ~900 VMs.
    let solo = [
        db_ref.aux().solo_time(WorkloadType::Cpu),
        db_ref.aux().solo_time(WorkloadType::Mem),
        db_ref.aux().solo_time(WorkloadType::Io),
    ];
    let mut generator = TraceGenerator::new(GeneratorConfig {
        seed: 33,
        total_jobs: 450,
        ..Default::default()
    })?;
    let mut trace = generator.generate();
    clean_trace(&mut trace);
    let cfg = AdaptConfig {
        qos_factor: 3.0,
        ..AdaptConfig::paper(33, solo)
    };
    let mut requests = adapt_trace(&trace, &cfg);
    eavm::swf::truncate_to_vm_total(&mut requests, 900);
    let deadlines = [
        cfg.deadline(WorkloadType::Cpu),
        cfg.deadline(WorkloadType::Mem),
        cfg.deadline(WorkloadType::Io),
    ];

    println!("\nconfiguration           makespan_s  energy_MJ  sla_pct  mean_busy");
    let show = |name: &str, out: SimOutcome| {
        println!(
            "{:<22}  {:>10.0}  {:>9.2}  {:>7.1}  {:>9.2}",
            name,
            out.makespan().value(),
            out.energy.value() / 1e6,
            out.sla_violation_pct(),
            out.mean_servers_busy(),
        );
    };

    let mut ff = FirstFit::ff(4); // slot-aware through the server views
    show("FF (slot-aware)", fleet("HET").run(&mut ff, &requests)?);

    let mut naive = Proactive::new(
        DbModel::new(db_ref.clone()),
        OptimizationGoal::BALANCED,
        deadlines,
    )
    .with_qos_margin(0.65);
    show("PA-0.5 naive", fleet("HET").run(&mut naive, &requests)?);

    let mut aware = Proactive::heterogeneous(
        vec![DbModel::new(db_ref), DbModel::new(db_big)],
        OptimizationGoal::BALANCED,
        deadlines,
    )
    .with_qos_margin(0.65);
    show(
        "PA-0.5 platform-aware",
        fleet("HET").run(&mut aware, &requests)?,
    );

    println!(
        "\nSee `cargo run --release -p eavm-bench --bin hetero_fleet` for the full-scale\n\
         version of this comparison and the analysis of why per-platform data alone\n\
         does not rescue a myopic greedy."
    );
    Ok(())
}
