//! Application profiling walkthrough: profile each HPC benchmark the way
//! the paper does (1 Hz subsystem sampling), classify it with the
//! "significant average demand" rule, then show how co-location
//! compatibility falls out of the empirical model — the core of the
//! application-centric thesis.
//!
//! Run with: `cargo run --release --example profile_and_model`

use eavm::prelude::*;
use eavm::testbed::ClassificationRule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = BenchmarkSuite::standard();
    let mut profiler = Profiler::reference(11);
    let rule = ClassificationRule::default();

    println!("== profiling the benchmark suite ==");
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6}   classification",
        "benchmark", "cpu%", "mem%", "disk%", "net%"
    );
    for app in suite.all() {
        let samples = profiler.profile(app);
        let avg = Profiler::average(&samples);
        let class = rule.classify(&avg);
        let tags: Vec<&str> = class.intensive.iter().map(|s| s.name()).collect();
        println!(
            "{:<18} {:>5.1} {:>6.1} {:>6.1} {:>6.1}   {} [{}]",
            app.name,
            100.0 * avg[Subsystem::Cpu],
            100.0 * avg[Subsystem::Mem],
            100.0 * avg[Subsystem::Disk],
            100.0 * avg[Subsystem::Net],
            class.primary,
            tags.join(","),
        );
    }

    println!("\n== compatibility: what does adding one VM cost? ==");
    let db = DbBuilder::exact().build()?;
    let model = DbModel::new(db);
    // Start from a half-packed CPU server and compare intruders.
    let base = MixVector::new(5, 0, 0);
    let t_before = model.exec_time(base, WorkloadType::Cpu)?;
    println!("5 CPU VMs alone: each takes {:.0}", t_before);
    for ty in WorkloadType::ALL {
        let mix = base.plus(ty);
        let t_cpu = model.exec_time(mix, WorkloadType::Cpu)?;
        let t_new = model.exec_time(mix, ty)?;
        println!(
            "+1 {ty:<4} VM -> resident CPU VMs stretch to {:.0} ({:+.1}%), the newcomer takes {:.0} ({:.2}x its solo time)",
            t_cpu,
            100.0 * (t_cpu / t_before - 1.0),
            t_new,
            t_new / model.solo_time(ty),
        );
    }
    println!(
        "\nreading: I/O-intensive VMs are the cheapest co-tenants for a CPU-heavy server — \
         the compatibility signal PROACTIVE exploits and FIRST-FIT ignores."
    );
    Ok(())
}
