//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64) plus the [`Rng::gen`] / [`Rng::gen_range`] sampling
//! surface. Streams are high quality and fully deterministic per seed,
//! but are **not** bit-compatible with upstream `rand 0.8` — nothing in
//! this repository pins upstream streams.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types uniformly samplable over a `[lo, hi)` / `[lo, hi]` span.
///
/// Mirrors upstream's shape: [`SampleRange`] has one blanket impl per
/// range kind over `T: SampleUniform`, so type inference pins
/// `gen_range`'s output to the range's element type (per-type
/// `SampleRange` impls would be ambiguous under float-literal fallback).
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` (`span > 0`, `span <= 2^64`) without
/// modulo bias: widening-multiply rejection (Lemire's method).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let s = span as u64;
    // Zone below which the widening multiply is unbiased.
    let zone = u64::MAX - (u64::MAX - s + 1) % s;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (s as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                // [lo, hi) and [lo, hi] coincide up to measure zero.
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic stream per seed).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seeding. Not cryptographic; not upstream-stream
    /// compatible (nothing in this repo pins upstream streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&y));
            let z = rng.gen_range(-0.015..=0.015);
            assert!((-0.015..=0.015).contains(&z));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
            let v = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&v));
            let s = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&s));
        }
        assert!(seen.iter().all(|&b| b), "uniform draw missed a bucket");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
