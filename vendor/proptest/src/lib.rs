//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! macro, `prop_assert*`/`prop_assume!`, range/tuple strategies with
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`], and the
//! `collection::vec`, `option::of`, `bool::ANY` constructors.
//!
//! Semantics: every test runs [`ProptestConfig::cases`] random cases
//! drawn from a generator seeded deterministically per test name, so
//! failures reproduce run-to-run. There is **no shrinking** — a failure
//! reports the case number and the assertion message only. Set
//! `PROPTEST_CASES` to raise or lower the case count globally.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// A failed (or rejected) test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Execution knobs for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Reject generated values failing `pred` (resampling; panics if the
    /// predicate rejects 1000 consecutive draws).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive draws",
            self.whence
        );
    }
}

/// A strategy always producing clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A size specification: fixed or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (`Some` three times out of four).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of` — optional values of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_range(rng, 0u32..4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen::<u64>(rng) & 1 == 1
        }
    }
}

/// Drive one property: run `config.cases` seeded cases of `body`,
/// panicking (with the case index) on the first `Err`.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng =
            TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = body(&mut rng) {
            panic!("proptest {name}: case {case}/{} failed: {e}", config.cases);
        }
    }
}

/// The proptest entry point: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                &$config,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            // No shrinking/rejection bookkeeping: a discarded case simply
            // counts as passed.
            return ::core::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}
