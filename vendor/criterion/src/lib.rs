//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of criterion it uses: [`Criterion`],
//! [`black_box`], `bench_function`, `benchmark_group` (with
//! `sample_size`/`finish`), and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple warmup + fixed-budget
//! measurement loop printing mean wall time per iteration — good enough
//! to compare variants locally, with no plots, statistics, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs one benchmark closure repeatedly and records elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn format_time(per_iter: Duration) -> String {
    let ns = per_iter.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Measurement budget per benchmark (smaller sample sizes shrink it).
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

fn bench_one(name: &str, samples: u64, mut f: impl FnMut(&mut Bencher)) {
    // Warmup + calibration: find an iteration count filling the budget.
    let probe = run_once(&mut f, 1).max(Duration::from_nanos(1));
    let budget = MEASURE_BUDGET * (samples as u32).clamp(1, 100) / 100;
    let iters = (budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    let elapsed = run_once(&mut f, iters);
    let per_iter = elapsed / iters as u32;
    println!(
        "{name:<50} time: {:>12}   ({iters} iters)",
        format_time(per_iter)
    );
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: u64,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower/raise the measurement effort (criterion's sample count; here
    /// it scales the time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Benchmark `f` under `self.name/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        bench_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        bench_one(name, 100, f);
        self
    }

    /// Open a named group whose benchmarks share settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 100,
            _parent: self,
        }
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
